// SLOW cross-solver acceptance matrix on the paper's 2^6 = 64-node
// building block (folded to a 4x4x2x2 logical torus, 4x4x4x16 lattice):
// BiCGstab and the mixed-precision reliable-update solvers must agree with
// all-double CG within the documented tolerance, and the half-sloppy path
// must show its predicted byte savings at full scale.  EXPERIMENTS.md
// records the measured values these assertions pin.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "lattice/bicgstab.h"
#include "lattice/cg.h"
#include "lattice/mixed.h"
#include "lattice/multishift.h"
#include "lattice/wilson.h"
#include "lattice_fixture.h"

namespace qcdoc::lattice {
namespace {

using testing::LatticeRig;
using testing::fill_by_global_site;
using testing::fill_gauge_by_global_site;
using testing::fold_two_to_six;
using testing::full_residual;
using testing::gather_global;

constexpr double kSolveTol = 1e-9;   // per-solver |r|/|b| target
constexpr double kAgreeTol = 1e-6;   // documented cross-solver envelope

struct Rig64 {
  LatticeRig rig;
  GaugeField gauge;
  std::optional<WilsonDirac> op_;
  std::optional<WilsonDirac> sloppy_;
  std::optional<DistField> b_;
  explicit Rig64(Precision sloppy)
      : rig({2, 2, 2, 2, 2, 2}, fold_two_to_six(), {4, 4, 4, 16}),
        gauge(rig.comm.get(), rig.geom.get()) {
    fill_gauge_by_global_site(*rig.geom, gauge, 0x2e6);
    op_.emplace(rig.ops.get(), rig.geom.get(), &gauge,
                WilsonParams{.kappa = 0.124});
    sloppy_.emplace(rig.ops.get(), rig.geom.get(), &gauge,
                    WilsonParams{.kappa = 0.124, .precision = sloppy});
    b_.emplace(op_->make_field("b"));
    fill_by_global_site(*rig.geom, *b_);
  }
  WilsonDirac& op() { return *op_; }
  WilsonDirac& sloppy() { return *sloppy_; }
  DistField& b() { return *b_; }
};

double worst_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

TEST(SolverMatrix, AgreementOnTwoToSixFixture) {
  // Reference: all-double CG on the normal equations.
  Rig64 ref_rig(Precision::kDouble);
  DistField x_ref = ref_rig.op().make_field("x");
  x_ref.zero();
  CgParams cgp;
  cgp.tolerance = kSolveTol;
  cgp.max_iterations = 2000;
  const CgResult r_ref = cg_solve(ref_rig.op(), x_ref, ref_rig.b(), cgp);
  ASSERT_TRUE(r_ref.converged);
  const auto ref = gather_global(*ref_rig.rig.geom, x_ref);
  const double ref_bytes = total_bytes(r_ref.traffic);
  ASSERT_GT(ref_bytes, 0.0);

  {  // BiCGstab on the unsquared system.
    Rig64 s(Precision::kDouble);
    DistField x = s.op().make_field("x");
    x.zero();
    CgParams p;
    p.tolerance = kSolveTol;
    p.max_iterations = 4000;
    const CgResult r = bicgstab_solve(s.op(), x, s.b(), p);
    ASSERT_TRUE(r.converged);
    EXPECT_LT(full_residual(s.op(), x, s.b()), 1e-8);
    EXPECT_LT(worst_diff(gather_global(*s.rig.geom, x), ref), kAgreeTol)
        << "bicgstab vs cg";
  }

  for (const Precision sloppy : {Precision::kSingle, Precision::kHalf}) {
    Rig64 s(sloppy);
    DistField x = s.op().make_field("x");
    x.zero();
    MixedCgParams p;
    p.tolerance = kSolveTol;
    p.sloppy = sloppy;
    const CgResult r = mixed_cg_solve(s.op(), s.sloppy(), x, s.b(), p);
    ASSERT_TRUE(r.converged) << precision_name(sloppy);
    EXPECT_LT(r.relative_residual, kSolveTol) << precision_name(sloppy);
    EXPECT_LT(worst_diff(gather_global(*s.rig.geom, x), ref), kAgreeTol)
        << "mixed-" << precision_name(sloppy) << " vs cg";
    // Narrow storage must pay off at full scale too.
    if (sloppy == Precision::kHalf) {
      EXPECT_GE(ref_bytes / total_bytes(r.traffic), 1.5);
    }
  }
}

TEST(SolverMatrix, MultishiftBaseAgreesOnTwoToSixFixture) {
  // The sigma = 0 base of a 4-shift family against plain CG, at scale.
  Rig64 ms_rig(Precision::kDouble);
  MultishiftParams mp;
  mp.shifts = {0.0, 0.1, 0.3, 0.7};
  mp.tolerance = kSolveTol;
  mp.max_iterations = 2000;
  std::vector<DistField> x;
  for (std::size_t i = 0; i < mp.shifts.size(); ++i) {
    x.push_back(ms_rig.op().make_field("x" + std::to_string(i)));
  }
  const MultishiftResult mr = multishift_solve(ms_rig.op(), x, ms_rig.b(), mp);
  ASSERT_TRUE(mr.converged);

  Rig64 cg_rig(Precision::kDouble);
  DistField xc = cg_rig.op().make_field("xc");
  xc.zero();
  CgParams cp;
  cp.tolerance = kSolveTol;
  cp.max_iterations = 2000;
  const CgResult cr = cg_solve(cg_rig.op(), xc, cg_rig.b(), cp);
  ASSERT_TRUE(cr.converged);

  const auto a = gather_global(*ms_rig.rig.geom, x[0]);
  const auto c = gather_global(*cg_rig.rig.geom, xc);
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], c[i]) << "word " << i;
  }
}

}  // namespace
}  // namespace qcdoc::lattice
