// Full-stack integration: boot over Ethernet/JTAG, allocate a partition,
// run a QCD job through the communications API on the simulated network,
// verify checksums -- the life cycle described in paper Sections 2.3-4.
#include <gtest/gtest.h>

#include "host/diagnostics.h"
#include "host/qdaemon.h"
#include "lattice/cg.h"
#include "lattice/wilson.h"
#include "lattice_fixture.h"

namespace qcdoc {
namespace {

using lattice::testing::fill_by_global_site;

TEST(Integration, BootPartitionSolveVerify) {
  machine::MachineConfig cfg;
  cfg.shape.extent = {4, 2, 2, 1, 1, 1};
  machine::Machine m(cfg);

  // 1. Boot the machine through the qdaemon.
  host::Qdaemon daemon(&m);
  const auto& boot = daemon.boot();
  ASSERT_EQ(boot.nodes_ready, 16);
  ASSERT_TRUE(boot.partition_interrupt_ok);

  // 2. Allocate a 4-D partition of the full machine.
  torus::Shape box;
  box.extent = {4, 2, 2, 1, 1, 1};
  const auto handle = daemon.allocate_partition("qcd", box, 4);
  ASSERT_TRUE(handle.has_value());

  // 3. Run a Wilson CG solve as a job.
  double residual = -1.0;
  const auto job = daemon.run_job(
      *handle, [&](comms::Communicator& comm, std::vector<std::string>& out) {
        machine::BspRunner bsp(&m);
        cpu::CpuModel cpu_model(m.hw(), m.mem_timing());
        lattice::FieldOps ops(&bsp, &cpu_model, &comm);
        lattice::GlobalGeometry geom(&comm.partition(), {8, 4, 4, 4});
        lattice::GaugeField gauge(&comm, &geom);
        Rng rng(1234);
        gauge.randomize_near_unit(rng, 0.1);
        lattice::WilsonDirac op(&ops, &geom, &gauge,
                                lattice::WilsonParams{.kappa = 0.12});
        lattice::DistField x = op.make_field("x");
        lattice::DistField b = op.make_field("b");
        x.zero();
        fill_by_global_site(geom, b);
        lattice::CgParams params;
        params.tolerance = 1e-7;
        params.max_iterations = 300;
        const auto result = lattice::cg_solve(op, x, b, params);
        residual = result.relative_residual;
        out.push_back("iterations=" + std::to_string(result.iterations));
      });
  ASSERT_TRUE(job.ok);
  EXPECT_LT(residual, 1e-7);
  EXPECT_GT(job.cycles, 0u);

  // 4. End-of-run confirmation: every link checksum matches and no SCU
  // errors were recorded (paper: "No hardware errors on the SCU links were
  // reported").
  host::Diagnostics diag(&m, &daemon.ethernet());
  const auto checks = diag.verify_checksums();
  EXPECT_TRUE(checks.all_match);
  const auto scan = diag.scan_link_errors();
  EXPECT_EQ(scan.detected_errors, 0u);
  EXPECT_EQ(scan.undetected_errors, 0u);
}

TEST(Integration, TwoPartitionsRunIndependentJobs) {
  machine::MachineConfig cfg;
  cfg.shape.extent = {4, 2, 2, 1, 1, 1};
  machine::Machine m(cfg);
  host::Qdaemon daemon(&m);
  daemon.boot();

  torus::Shape half;
  half.extent = {2, 2, 2, 1, 1, 1};
  const auto p1 = daemon.allocate_partition("left", half, 4);
  const auto p2 = daemon.allocate_partition("right", half, 4);
  ASSERT_TRUE(p1 && p2);

  auto qcd_job = [&m](comms::Communicator& comm,
                      std::vector<std::string>& out) {
    machine::BspRunner bsp(&m);
    cpu::CpuModel cpu_model(m.hw(), m.mem_timing());
    lattice::FieldOps ops(&bsp, &cpu_model, &comm);
    lattice::GlobalGeometry geom(&comm.partition(), {4, 4, 4, 2});
    lattice::GaugeField gauge(&comm, &geom);
    gauge.set_unit();
    out.push_back("plaquette=" + std::to_string(gauge.average_plaquette()));
  };
  const auto r1 = daemon.run_job(*p1, qcd_job);
  const auto r2 = daemon.run_job(*p2, qcd_job);
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_EQ(r1.output, r2.output);
}

TEST(Integration, FaultySerialLinkIsRepairedAndReported) {
  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 2, 2, 1, 1, 1};
  cfg.bit_error_rate = 0.0;
  machine::Machine m(cfg);
  host::Qdaemon daemon(&m);
  daemon.boot();
  // One marginal wire in the machine.
  m.mesh().wire(NodeId{3}, torus::link_index(1, torus::Dir::kPlus))
      .set_bit_error_rate(1e-3);

  torus::Shape box;
  box.extent = {2, 2, 2, 1, 1, 1};
  const auto handle = daemon.allocate_partition("fault", box, 4);
  ASSERT_TRUE(handle.has_value());
  double norm = 0;
  const auto job = daemon.run_job(
      *handle, [&](comms::Communicator& comm, std::vector<std::string>&) {
        machine::BspRunner bsp(&m);
        cpu::CpuModel cpu_model(m.hw(), m.mem_timing());
        lattice::FieldOps ops(&bsp, &cpu_model, &comm);
        lattice::GlobalGeometry geom(&comm.partition(), {4, 4, 4, 2});
        lattice::GaugeField gauge(&comm, &geom);
        gauge.set_unit();
        lattice::WilsonDirac op(&ops, &geom, &gauge, lattice::WilsonParams{});
        lattice::DistField in = op.make_field("in");
        lattice::DistField out = op.make_field("out");
        fill_by_global_site(geom, in);
        for (int i = 0; i < 5; ++i) op.dslash(out, in);
        norm = ops.norm2(out);
      });
  ASSERT_TRUE(job.ok);
  // Same computation on a clean machine gives the same answer: the
  // automatic resend protocol repaired every detected error.
  machine::MachineConfig clean_cfg = cfg;
  machine::Machine clean(clean_cfg);
  host::Qdaemon clean_daemon(&clean);
  clean_daemon.boot();
  const auto clean_handle = clean_daemon.allocate_partition("clean", box, 4);
  double clean_norm = 0;
  clean_daemon.run_job(
      *clean_handle, [&](comms::Communicator& comm, std::vector<std::string>&) {
        machine::BspRunner bsp(&clean);
        cpu::CpuModel cpu_model(clean.hw(), clean.mem_timing());
        lattice::FieldOps ops(&bsp, &cpu_model, &comm);
        lattice::GlobalGeometry geom(&comm.partition(), {4, 4, 4, 2});
        lattice::GaugeField gauge(&comm, &geom);
        gauge.set_unit();
        lattice::WilsonDirac op(&ops, &geom, &gauge, lattice::WilsonParams{});
        lattice::DistField in = op.make_field("in");
        lattice::DistField out = op.make_field("out");
        fill_by_global_site(geom, in);
        for (int i = 0; i < 5; ++i) op.dslash(out, in);
        clean_norm = ops.norm2(out);
      });
  host::Diagnostics diag(&m, &daemon.ethernet());
  const auto scan = diag.scan_link_errors();
  if (scan.undetected_errors == 0) {
    EXPECT_EQ(norm, clean_norm);  // bitwise identical despite the faults
    EXPECT_TRUE(diag.verify_checksums().all_match);
  } else {
    EXPECT_FALSE(diag.verify_checksums().all_match);
  }
  // The diagnostics point at the faulty region.
  if (scan.detected_errors > 0) {
    EXPECT_FALSE(scan.suspect_nodes.empty());
  }
}

}  // namespace
}  // namespace qcdoc
