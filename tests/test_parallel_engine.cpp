// Contract tests for the parallel simulation engine: bit-identical order
// with the serial engine, loud failure on lookahead violations, and the
// drain/step/advance semantics both engines must share (engine.h's
// execution-order contract).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "machine/machine.h"
#include "sim/engine.h"
#include "sim/parallel_engine.h"

namespace qcdoc::sim {
namespace {

constexpr Cycle kLookahead = 20;

// A synthetic multi-node workload: every node keeps a private counter, each
// event re-arms itself on its own node (any delay is legal) and pokes the
// next node no sooner than the lookahead (the only legal cross-node delay,
// mirroring the HSSL's serialization + wire time).
struct Workload {
  Engine* e;
  int n;
  std::vector<u64> hits;  // per node; only that node's events touch it

  explicit Workload(Engine* engine, int nodes)
      : e(engine), n(nodes), hits(static_cast<std::size_t>(nodes), 0) {}

  void fire(int node, int depth) {
    hits[static_cast<std::size_t>(node)] += static_cast<u64>(depth) + 1;
    if (depth == 0) return;
    e->schedule(3 + static_cast<Cycle>(depth % 4),
                [this, node, depth] { fire(node, depth - 1); });
    const int next = (node + 1) % n;
    e->schedule_on(static_cast<Affinity>(next),
                   kLookahead + static_cast<Cycle>(depth % 3),
                   [this, next, depth] { fire(next, depth - 1); });
  }

  void seed_and_run() {
    for (int i = 0; i < n; ++i) {
      e->schedule_on(static_cast<Affinity>(i), static_cast<Cycle>(i % 5),
                     [this, i] { fire(i, 6); });
    }
    e->run_until_idle();
  }
};

struct RunResult {
  u64 digest;
  u64 events;
  Cycle end;
  std::vector<u64> hits;
};

RunResult run_workload(Engine& e, int nodes) {
  Workload w(&e, nodes);
  w.seed_and_run();
  return {e.trace_digest(), e.events_executed(), e.now(), w.hits};
}

TEST(ParallelEngine, BitIdenticalToSerialOnSyntheticWorkload) {
  SerialEngine serial;
  const RunResult ref = run_workload(serial, 8);
  ASSERT_GT(ref.events, 100u);

  for (const int threads : {1, 2, 4}) {
    ParallelEngine par(ParallelConfig{threads, kLookahead, 8});
    const RunResult got = run_workload(par, 8);
    EXPECT_EQ(got.digest, ref.digest) << threads << " threads";
    EXPECT_EQ(got.events, ref.events) << threads << " threads";
    EXPECT_EQ(got.end, ref.end) << threads << " threads";
    EXPECT_EQ(got.hits, ref.hits) << threads << " threads";
  }
}

TEST(ParallelEngine, StepByStepMatchesSerialEngine) {
  SerialEngine serial;
  ParallelEngine par(ParallelConfig{2, kLookahead, 4});
  for (Engine* e : {static_cast<Engine*>(&serial), static_cast<Engine*>(&par)}) {
    for (int i = 3; i >= 0; --i) {
      e->schedule_on(static_cast<Affinity>(i), static_cast<Cycle>(10 * i), [] {});
    }
  }
  // step() must execute exactly one event in global key order on any engine.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(par.step());
    EXPECT_TRUE(serial.step());
    EXPECT_EQ(par.now(), serial.now());
    EXPECT_EQ(par.trace_digest(), serial.trace_digest());
  }
  EXPECT_FALSE(par.step());
  EXPECT_FALSE(serial.step());
}

TEST(ParallelEngine, CrossNodeScheduleInsideLookaheadThrows) {
  ParallelEngine e(ParallelConfig{2, 10, 2});
  // Node 0 tries to poke node 1 after a single cycle -- faster than any
  // frame could physically arrive, and inside the current window.  The
  // engine must fail loudly rather than silently diverge from serial order.
  e.schedule_on(0, 0, [&e] { e.schedule_on(1, 1, [] {}); });
  EXPECT_THROW(e.run_until_idle(), std::logic_error);
}

TEST(ParallelEngine, AffinityOutOfRangeThrows) {
  ParallelEngine e(ParallelConfig{2, 10, 2});
  EXPECT_THROW(e.schedule_on(2, 0, [] {}), std::invalid_argument);
  EXPECT_THROW(e.schedule_on(17, 0, [] {}), std::invalid_argument);
  e.schedule_on(kHostAffinity, 0, [] {});  // host is always valid
  e.schedule_on(1, 0, [] {});
  e.run_until_idle();
  EXPECT_EQ(e.events_executed(), 2u);
}

TEST(ParallelEngine, ReentrantSteppingThrows) {
  ParallelEngine e(ParallelConfig{2, 10, 2});
  e.schedule_on(kHostAffinity, 0, [&e] { e.step(); });
  EXPECT_THROW(e.run_until_idle(), std::logic_error);
}

// Satellite contract: schedule_at into the past must be rejected with a
// clear error on every engine, instead of corrupting the event order.
TEST(EngineContract, ScheduleAtPastThrowsOnBothEngines) {
  SerialEngine serial;
  ParallelEngine par(ParallelConfig{2, 10, 2});
  for (Engine* e : {static_cast<Engine*>(&serial), static_cast<Engine*>(&par)}) {
    e->schedule_at(100, [] {});
    e->run_until_idle();
    ASSERT_EQ(e->now(), 100u);
    EXPECT_THROW(e->schedule_at(50, [] {}), std::invalid_argument);
    try {
      e->schedule_at(50, [] {});
      FAIL() << "no exception";
    } catch (const std::invalid_argument& ex) {
      EXPECT_NE(std::string(ex.what()).find("past"), std::string::npos);
      EXPECT_NE(std::string(ex.what()).find("t=50"), std::string::npos);
    }
    // t == now() is legal (zero-delay events are common in the SCU model).
    e->schedule_at(100, [] {});
    e->run_until_idle();
  }
}

TEST(EngineContract, DrainStopsTheClockAtTheZeroingEvent) {
  SerialEngine serial;
  ParallelEngine par(ParallelConfig{2, 10, 2});
  for (Engine* e : {static_cast<Engine*>(&serial), static_cast<Engine*>(&par)}) {
    ActiveCounter c;
    c.increment();
    e->schedule_on(0, 50, [&] { c.decrement(e->now()); });
    e->schedule_on(1, 80, [] {});  // must stay pending
    EXPECT_TRUE(e->drain(c));
    EXPECT_EQ(e->now(), 50u);
    EXPECT_EQ(c.last_zero_at(), 50u);
    EXPECT_EQ(e->pending_events(), 1u);
    e->run_until_idle();
  }
}

TEST(EngineContract, DrainReportsStallWhenQueueEmptiesFirst) {
  SerialEngine serial;
  ParallelEngine par(ParallelConfig{2, 10, 2});
  for (Engine* e : {static_cast<Engine*>(&serial), static_cast<Engine*>(&par)}) {
    ActiveCounter c;
    c.increment();
    e->schedule_on(0, 5, [] {});
    EXPECT_FALSE(e->drain(c));  // counter never reaches zero: a stall
  }
}

TEST(EngineContract, AdvanceToRefusesToSkipPendingEvents) {
  SerialEngine serial;
  ParallelEngine par(ParallelConfig{2, 10, 2});
  for (Engine* e : {static_cast<Engine*>(&serial), static_cast<Engine*>(&par)}) {
    e->schedule_at(10, [] {});
    EXPECT_THROW(e->advance_to(20), std::logic_error);
    e->run_until_idle();
    e->advance_to(200);
    EXPECT_EQ(e->now(), 200u);
  }
}

TEST(ParallelEngine, ReportCountsWindowsAndShards) {
  ParallelEngine e(ParallelConfig{2, kLookahead, 8});
  run_workload(e, 8);
  const EngineReport r = e.report();
  EXPECT_EQ(r.kind, "parallel");
  EXPECT_EQ(r.threads, 2);
  EXPECT_EQ(r.lookahead, kLookahead);
  EXPECT_GT(r.windows_parallel, 0u);
  EXPECT_GT(r.cross_shard_events, 0u);
  u64 total = 0;
  for (const u64 s : r.shard_events) total += s;
  EXPECT_EQ(total, r.events);
  EXPECT_EQ(r.events, e.events_executed());
}

TEST(ParallelEngine, ReportPopulatesBarrierAndActionPoolCounters) {
  ParallelEngine e(ParallelConfig{4, kLookahead, 8});
  run_workload(e, 8);
  const EngineReport r = e.report();
  ASSERT_GT(r.windows_parallel, 0u);
  // Every parallel window ends in exactly one barrier observation: a
  // measured coordinator wait in some bucket >= 1, or bucket 0 when the
  // workers finished before the coordinator even looked.
  u64 observations = 0;
  for (const u64 b : r.barrier_wait_hist) observations += b;
  EXPECT_EQ(observations, r.windows_parallel);
  EXPECT_GE(r.barrier_stall_seconds, 0.0);
  if (r.barrier_stall_seconds > 0.0) {
    EXPECT_GT(observations - r.barrier_wait_hist[0], 0u)
        << "stall time was accumulated but no wait bucket was hit";
  }
  EXPECT_GT(r.parallel_window_events, 0u);
  EXPECT_LE(r.parallel_window_events, r.events);
  EXPECT_GT(r.peak_pending_events, 0u);
  // Every capture in this workload fits EventFn's inline buffer: the engine
  // must not have carved a single action-pool heap block for it.
  EXPECT_EQ(r.action_pool_blocks, 0u);
  EXPECT_EQ(r.action_oversize_allocs, 0u);
}

// Adaptive-window satellite: when only one shard holds events, the engine
// must fast-forward that shard serially (no worker handoff, no barrier)
// instead of running degenerate one-shard "parallel" windows.
TEST(ParallelEngine, SingleShardBacklogFastForwardsSerially) {
  SerialEngine serial;
  ParallelEngine par(ParallelConfig{4, kLookahead, 8});
  for (Engine* e : {static_cast<Engine*>(&serial), static_cast<Engine*>(&par)}) {
    // A long self-rearming chain confined to node 2: every window sees
    // exactly one live shard.
    struct Chain {
      Engine* e;
      int left = 300;
      void fire() {
        if (--left > 0) e->schedule(7, [this] { fire(); });
      }
    };
    Chain c{e};
    e->schedule_on(2, 1, [&c] { c.fire(); });
    e->run_until_idle();
  }
  EXPECT_EQ(par.trace_digest(), serial.trace_digest());
  EXPECT_EQ(par.events_executed(), serial.events_executed());
  const EngineReport r = par.report();
  EXPECT_GT(r.windows_serial, 0u);
  EXPECT_EQ(r.windows_parallel, 0u)
      << "a one-shard backlog must never engage the worker barrier";
}

// Host events must ride in their own seam slices (windows_host) without
// demoting the surrounding node windows, and the mixed schedule must stay
// bit-identical to the serial engine at every thread count.
TEST(ParallelEngine, MixedHostNodeWorkloadBitIdenticalWithHostSlices) {
  struct Beat {
    Engine* e;
    u64 count = 0;
    void fire() {
      ++count;
      if (count < 40) e->schedule_on(kHostAffinity, 9, [this] { fire(); });
    }
  };
  auto run_mixed = [](Engine& e) {
    Workload w(&e, 8);
    Beat beat{&e};
    e.schedule_on(kHostAffinity, 0, [&beat] { beat.fire(); });
    w.seed_and_run();
    EXPECT_EQ(beat.count, 40u);
    return std::pair<u64, u64>{e.trace_digest(), e.events_executed()};
  };
  SerialEngine serial;
  const auto ref = run_mixed(serial);
  for (const int threads : {1, 2, 4}) {
    ParallelEngine par(ParallelConfig{threads, kLookahead, 8});
    const auto got = run_mixed(par);
    EXPECT_EQ(got, ref) << threads << " threads";
    const EngineReport r = par.report();
    EXPECT_GT(r.windows_host, 0u) << threads << " threads";
    if (threads > 1) {
      EXPECT_GT(r.windows_parallel, 0u)
          << "host seams must not demote node windows (" << threads
          << " threads)";
    }
  }
}

// End to end: a whole machine boot must produce the same event-order digest,
// clock and event count whether simulated serially or on worker threads.
TEST(ParallelEngine, MachineBootIsBitIdenticalAcrossThreadCounts) {
  struct Boot {
    u64 digest;
    u64 events;
    Cycle end;
  };
  auto boot = [](int threads) {
    machine::MachineConfig cfg;
    cfg.shape.extent = {2, 2, 1, 1, 1, 1};
    cfg.sim_threads = threads;
    machine::Machine m(cfg);
    m.power_on();
    return Boot{m.engine().trace_digest(), m.engine().events_executed(),
                m.engine().now()};
  };
  const Boot ref = boot(1);
  for (const int threads : {2, 4}) {
    const Boot got = boot(threads);
    EXPECT_EQ(got.digest, ref.digest) << threads << " threads";
    EXPECT_EQ(got.events, ref.events) << threads << " threads";
    EXPECT_EQ(got.end, ref.end) << threads << " threads";
  }
}

}  // namespace
}  // namespace qcdoc::sim
