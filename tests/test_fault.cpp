// Fault injection, health monitoring and recovery (paper Sections 2.3, 4).
#include <gtest/gtest.h>

#include <bit>
#include <string>
#include <tuple>
#include <vector>

#include "fault/checksum_audit.h"
#include "fault/fault.h"
#include "host/qdaemon.h"
#include "lattice/cg.h"
#include "lattice/wilson.h"
#include "lattice_fixture.h"

namespace qcdoc {
namespace {

using torus::LinkIndex;

machine::MachineConfig small_config(std::array<int, 6> extents) {
  machine::MachineConfig cfg;
  cfg.shape.extent = extents;
  return cfg;
}

// --- Fault plans ------------------------------------------------------------

TEST(FaultPlan, RandomCampaignIsSeedDeterministic) {
  torus::Shape shape;
  shape.extent = {2, 2, 2, 2, 2, 2};
  const auto a = fault::FaultPlan::random_campaign(123, shape, 20, 1000, 50000);
  const auto b = fault::FaultPlan::random_campaign(123, shape, 20, 1000, 50000);
  const auto c = fault::FaultPlan::random_campaign(124, shape, 20, 1000, 50000);
  ASSERT_EQ(a.size(), 20u);
  ASSERT_EQ(a.size(), b.size());
  bool differs_from_c = a.size() != c.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
    EXPECT_EQ(a.events()[i].link, b.events()[i].link);
    if (i < c.size() &&
        (a.events()[i].at != c.events()[i].at ||
         a.events()[i].kind != c.events()[i].kind ||
         !(a.events()[i].node == c.events()[i].node))) {
      differs_from_c = true;
    }
    // Events are sorted by time and inside the horizon.
    EXPECT_GE(a.events()[i].at, 1000u);
    EXPECT_LT(a.events()[i].at, 51000u);
    if (i > 0) {
      EXPECT_GE(a.events()[i].at, a.events()[i - 1].at);
    }
  }
  EXPECT_TRUE(differs_from_c);
}

// --- The injector against a live mesh ---------------------------------------

TEST(FaultInjector, BerSpikeAppliesAndRestoresAfterDuration) {
  machine::Machine m(small_config({2, 1, 1, 1, 1, 1}));
  m.power_on();
  auto& wire = m.mesh().wire(NodeId{0}, LinkIndex{0});
  const Cycle at = m.engine().now() + 100;

  sim::StatSet fstats;
  fault::FaultInjector injector(&m.mesh(), &fstats);
  fault::FaultPlan plan;
  plan.ber_spike(at, NodeId{0}, LinkIndex{0}, 0.25, /*duration=*/200);
  injector.arm(plan);

  m.engine().run_until(at + 50);
  EXPECT_DOUBLE_EQ(wire.bit_error_rate(), 0.25);
  m.engine().run_until(at + 300);
  EXPECT_DOUBLE_EQ(wire.bit_error_rate(), 0.0);
  EXPECT_EQ(injector.injected(), 1u);
  EXPECT_EQ(fstats.get("fault.ber_spike"), 1u);
}

TEST(FaultInjector, NodeCrashKillsEveryOutgoingWire) {
  machine::Machine m(small_config({2, 2, 1, 1, 1, 1}));
  m.power_on();
  fault::FaultInjector injector(&m.mesh(), nullptr);
  fault::FaultPlan plan;
  plan.node_crash(m.engine().now(), NodeId{3});
  injector.arm(plan);
  m.engine().run_until(m.engine().now() + 1);

  EXPECT_EQ(m.mesh().condition(NodeId{3}), net::NodeCondition::kCrashed);
  for (int l = 0; l < torus::kLinksPerNode; ++l) {
    EXPECT_TRUE(m.mesh().wire(NodeId{3}, LinkIndex{l}).failed());
  }
  EXPECT_EQ(m.mesh().condition(NodeId{0}), net::NodeCondition::kOk);
}

// --- Bounded power-on (satellite: no infinite training loop) ----------------

TEST(Machine, PowerOnCheckedReportsUntrainedLinksInsteadOfLooping) {
  machine::Machine m(small_config({2, 2, 1, 1, 1, 1}));
  // A dead cable from the factory: this wire can never train.
  m.mesh().wire(NodeId{0}, LinkIndex{0}).fail();
  const auto report = m.power_on_checked();
  EXPECT_FALSE(report.all_trained);
  ASSERT_EQ(report.untrained.size(), 1u);
  EXPECT_EQ(report.untrained[0].node, NodeId{0});
  EXPECT_EQ(report.untrained[0].link, LinkIndex{0});

  machine::Machine healthy(small_config({2, 2, 1, 1, 1, 1}));
  const auto ok = healthy.power_on_checked();
  EXPECT_TRUE(ok.all_trained);
  EXPECT_TRUE(ok.untrained.empty());
  EXPECT_GT(ok.cycles, 0u);
}

// --- Incremental checksum audit ---------------------------------------------

TEST(ChecksumAudit, DeltaAuditCatchesCorruptionOnceThenRebaselines) {
  machine::Machine m(small_config({2, 1, 1, 1, 1, 1}));
  m.power_on();
  const LinkIndex l0{0};
  auto& recv = m.scu(NodeId{1}).recv_side(torus::facing_link(l0));
  recv.set_data_sink([](u64) {});

  fault::ChecksumAuditor auditor(&m.mesh());
  auto send_words = [&](int n) {
    for (int i = 0; i < n; ++i) {
      m.scu(NodeId{0}).send_side(l0).enqueue_data(static_cast<u64>(777 + i));
    }
    m.engine().run_until_idle();
  };

  send_words(20);
  EXPECT_TRUE(auditor.clean_since_last());

  recv.force_corrupt(1);
  send_words(20);
  std::vector<std::string> mismatches;
  EXPECT_FALSE(auditor.clean_since_last(&mismatches));
  EXPECT_EQ(mismatches.size(), 1u);

  // The dirty interval was consumed: fresh traffic audits clean even though
  // the *cumulative* checksums will disagree forever.
  send_words(20);
  EXPECT_TRUE(auditor.clean_since_last());
  EXPECT_EQ(auditor.audits(), 3u);
  EXPECT_EQ(auditor.failures(), 1u);
  EXPECT_NE(m.scu(NodeId{0}).send_checksum(l0), recv.checksum());
}

// --- Boot with dead hardware ------------------------------------------------

TEST(Boot, DeadWireIsReportedAndEndpointsQuarantined) {
  machine::Machine m(small_config({2, 2, 1, 1, 1, 1}));
  m.mesh().wire(NodeId{0}, LinkIndex{0}).fail();
  host::Qdaemon qd(&m);
  const auto& report = qd.boot();  // must terminate, not assert or spin
  EXPECT_FALSE(report.link_training_ok);
  ASSERT_EQ(report.untrained_links.size(), 1u);
  EXPECT_EQ(report.untrained_links[0].node, NodeId{0});

  const NodeId other = m.topology().neighbor(NodeId{0}, LinkIndex{0});
  EXPECT_EQ(qd.node_state(NodeId{0}), host::NodeBootState::kHardwareFailed);
  EXPECT_EQ(qd.node_state(other), host::NodeBootState::kHardwareFailed);
  EXPECT_TRUE(qd.is_quarantined(NodeId{0}));
  EXPECT_TRUE(qd.is_quarantined(other));
  EXPECT_EQ(qd.free_nodes(), 2);
}

// --- Health monitor ---------------------------------------------------------

TEST(Health, CrashedNodeIsQuarantinedAndJobsFailCleanly) {
  machine::Machine m(small_config({2, 2, 1, 1, 1, 1}));
  host::Qdaemon qd(&m);
  qd.boot();
  torus::Shape whole;
  whole.extent = {2, 2, 1, 1, 1, 1};
  auto handle = qd.allocate_partition("all", whole, 2);
  ASSERT_TRUE(handle.has_value());

  fault::FaultInjector injector(&m.mesh(), nullptr);
  fault::FaultPlan plan;
  plan.node_crash(m.engine().now(), NodeId{3});
  injector.arm(plan);
  m.engine().run_until(m.engine().now() + 1);

  const auto sweep = qd.health().sweep();
  ASSERT_EQ(sweep.newly_failed.size(), 1u);
  EXPECT_EQ(sweep.newly_failed[0], NodeId{3});
  EXPECT_EQ(qd.health().health(NodeId{3}), host::NodeHealth::kFailed);
  EXPECT_TRUE(qd.is_quarantined(NodeId{3}));

  // A job on the partition covering the dead node fails cleanly with a
  // diagnostic, rather than hanging the machine.
  const auto job = qd.run_job(
      *handle, [](comms::Communicator&, std::vector<std::string>& out) {
        out.push_back("should not run");
      });
  EXPECT_FALSE(job.ok);
  ASSERT_FALSE(job.output.empty());
  EXPECT_NE(job.output[0].find("node 3"), std::string::npos);

  // Future allocations avoid the quarantined node.
  qd.release_partition(*handle);
  EXPECT_FALSE(qd.allocate_partition("again", whole, 2).has_value());
  torus::Shape half;
  half.extent = {2, 1, 1, 1, 1, 1};
  auto safe = qd.allocate_partition("half", half, 1);
  ASSERT_TRUE(safe.has_value());
  for (const NodeId n : safe->partition->nodes()) {
    EXPECT_FALSE(n == NodeId{3});
  }
}

// --- SCU receive-progress watchdog ------------------------------------------

TEST(Watchdog, StalledReceiverIsFlaggedAndQuarantined) {
  machine::Machine m(small_config({2, 2, 1, 1, 1, 1}));
  host::Qdaemon qd(&m);
  qd.boot();
  host::WatchdogConfig wcfg;
  wcfg.stall_cycles = 1 << 12;
  host::ScuWatchdog& wd = qd.watchdog(wcfg);

  // Healthy traffic: receive counters advance, nobody is flagged.
  const LinkIndex l0{0};
  const NodeId receiver = m.topology().neighbor(NodeId{0}, l0);
  auto& recv = m.scu(receiver).recv_side(torus::facing_link(l0));
  recv.set_data_sink([](u64) {});
  for (int i = 0; i < 16; ++i) {
    m.scu(NodeId{0}).send_side(l0).enqueue_data(static_cast<u64>(i));
  }
  m.engine().run_until_idle();
  EXPECT_TRUE(wd.check().stalled.empty());

  // The wire dies with data still queued behind it: the receiver's word
  // counters freeze while the sender's queue stays undrained.  Idle nodes
  // freeze too, but with no neighbour data pending they are never flagged.
  m.mesh().wire(NodeId{0}, l0).fail();
  for (int i = 0; i < 8; ++i) {
    m.scu(NodeId{0}).send_side(l0).enqueue_data(static_cast<u64>(100 + i));
  }
  m.engine().run_until(m.engine().now() + (1 << 13));
  const auto rep = wd.check();
  ASSERT_EQ(rep.stalled.size(), 1u);
  EXPECT_EQ(rep.stalled[0], receiver);
  EXPECT_TRUE(wd.stalled(receiver));
  // The report escalates through the health monitor to quarantine.
  EXPECT_EQ(qd.health().health(receiver), host::NodeHealth::kFailed);
  EXPECT_TRUE(qd.is_quarantined(receiver));
  // Sticky: a second check does not re-report the same node.
  EXPECT_TRUE(wd.check().stalled.empty());
  EXPECT_EQ(wd.nodes_flagged(), 1u);
}

// The armed (event-driven) watchdog must catch the same stall as the
// synchronous check() path while the engine keeps running, and -- because
// its samplers are node-affine events and its correlation reads only
// host-side memory -- the whole run must stay bit-identical across thread
// counts (the bounded-affinity contract, DESIGN.md).
TEST(Watchdog, ArmedSamplingFlagsStallAndKeepsDigestThreadInvariant) {
  struct Run {
    u64 digest;
    u64 events;
    bool flagged;
    bool quarantined;
    u64 checks;
  };
  auto run = [](int threads) {
    machine::MachineConfig cfg = small_config({2, 2, 1, 1, 1, 1});
    cfg.sim_threads = threads;
    machine::Machine m(cfg);
    host::Qdaemon qd(&m);
    qd.boot();
    host::WatchdogConfig wcfg;
    wcfg.check_period_cycles = 1 << 12;
    wcfg.stall_cycles = 1 << 14;
    host::ScuWatchdog& wd = qd.watchdog(wcfg);

    const LinkIndex l0{0};
    const NodeId receiver = m.topology().neighbor(NodeId{0}, l0);
    m.scu(receiver).recv_side(torus::facing_link(l0)).set_data_sink([](u64) {});
    // Dead wire with data queued behind it: the receiver's counters freeze
    // while node 0's send side stays undrained -- the armed samplers must
    // observe both halves and the host correlation must flag the receiver.
    m.mesh().wire(NodeId{0}, l0).fail();
    for (int i = 0; i < 8; ++i) {
      m.scu(NodeId{0}).send_side(l0).enqueue_data(static_cast<u64>(i));
    }
    wd.arm(1 << 16);
    EXPECT_TRUE(wd.armed());
    m.engine().run_until(m.engine().now() + (1 << 16) + 64);
    EXPECT_FALSE(wd.armed()) << "watch must expire at the armed horizon";
    return Run{m.engine().trace_digest(), m.engine().events_executed(),
               wd.stalled(receiver), qd.is_quarantined(receiver), wd.checks()};
  };
  const Run ref = run(1);
  EXPECT_TRUE(ref.flagged);
  EXPECT_TRUE(ref.quarantined);
  EXPECT_GT(ref.checks, 0u);
  for (const int threads : {2, 4}) {
    const Run got = run(threads);
    EXPECT_EQ(got.digest, ref.digest) << threads << " threads";
    EXPECT_EQ(got.events, ref.events) << threads << " threads";
    EXPECT_EQ(got.flagged, ref.flagged) << threads << " threads";
    EXPECT_EQ(got.quarantined, ref.quarantined) << threads << " threads";
    EXPECT_EQ(got.checks, ref.checks) << threads << " threads";
  }
}

TEST(Health, MemCheckEscalationLadder) {
  machine::Machine m(small_config({2, 2, 1, 1, 1, 1}));
  host::Qdaemon qd(&m);
  qd.boot();
  host::HealthConfig hcfg;
  hcfg.degraded_corrected_mem_delta = 2;
  hcfg.quarantine_mem_uncorrectable = 2;
  host::HealthMonitor& health = qd.health(hcfg);

  auto& mem = m.memory(NodeId{2});
  const memsys::Block b = mem.alloc_in(memsys::Region::kEdram, 64, "t");

  // Rung 1: a burst of corrected singles degrades the node.
  for (u64 w = 0; w < 3; ++w) mem.ecc().inject_upset(b.word_addr + 16 * w, 1);
  mem.ecc().scrub_step(/*rows=*/1 << 16, /*cycles_per_row=*/2);
  auto sweep = health.sweep();
  EXPECT_EQ(sweep.degraded, 1);
  EXPECT_EQ(sweep.mem_corrected, 3u);
  EXPECT_EQ(health.health(NodeId{2}), host::NodeHealth::kDegraded);
  EXPECT_FALSE(qd.is_quarantined(NodeId{2}));

  // Rung 2: an uncorrectable codeword (machine check) keeps it degraded
  // and is consumed by the sweep.
  mem.ecc().inject_upset(b.word_addr, 4);
  mem.ecc().inject_upset(b.word_addr + 1, 5);
  sweep = health.sweep();
  EXPECT_EQ(sweep.machine_checked, 1);
  EXPECT_EQ(sweep.mem_uncorrectable, 1u);
  EXPECT_EQ(health.health(NodeId{2}), host::NodeHealth::kDegraded);
  EXPECT_FALSE(mem.ecc().machine_check_pending());

  // Rung 3: enough lifetime uncorrectable errors fail and quarantine it.
  mem.ecc().inject_upset(b.word_addr + 32, 4);
  mem.ecc().inject_upset(b.word_addr + 33, 5);
  sweep = health.sweep();
  EXPECT_EQ(sweep.failed, 1);
  EXPECT_EQ(health.health(NodeId{2}), host::NodeHealth::kFailed);
  EXPECT_TRUE(qd.is_quarantined(NodeId{2}));
}

TEST(Health, HungNodeIsDetectedBySweep) {
  machine::Machine m(small_config({2, 2, 1, 1, 1, 1}));
  host::Qdaemon qd(&m);
  qd.boot();
  fault::FaultInjector injector(&m.mesh(), nullptr);
  fault::FaultPlan plan;
  plan.node_hang(m.engine().now(), NodeId{1});
  injector.arm(plan);
  m.engine().run_until(m.engine().now() + 1);
  const auto sweep = qd.health().sweep();
  EXPECT_EQ(sweep.failed, 1);
  EXPECT_EQ(qd.health().health(NodeId{1}), host::NodeHealth::kFailed);
  EXPECT_TRUE(qd.is_quarantined(NodeId{1}));
  EXPECT_EQ(sweep.healthy, 3);
}

}  // namespace
}  // namespace qcdoc

// --- Audited CG and the end-to-end campaign ---------------------------------

namespace qcdoc::lattice {
namespace {

using torus::LinkIndex;
using testing::LatticeRig;
using testing::fill_by_global_site;

double true_residual(DiracOperator& op, DistField& x, DistField& b) {
  FieldOps& ops = op.ops();
  DistField mx = op.make_field("check.mx");
  DistField r = op.make_field("check.r");
  DistField mdr = op.make_field("check.mdr");
  op.apply(mx, x);
  ops.copy(b, r);
  ops.axpy(-1.0, mx, r);
  op.apply_dag(mdr, r);
  const double num = ops.norm2(mdr);
  op.apply_dag(mdr, b);
  const double den = ops.norm2(mdr);
  return std::sqrt(num / den);
}

TEST(CgAudited, CleanAuditsMatchPlainCgExactly) {
  auto solve = [](bool audited, int* iterations, double* residual) {
    LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    Rng rng(41);
    gauge.randomize_near_unit(rng, 0.1);
    WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                   WilsonParams{.kappa = 0.12});
    DistField x = op.make_field("x");
    DistField b = op.make_field("b");
    x.zero();
    fill_by_global_site(*rig.geom, b);
    CgParams params;
    params.tolerance = 1e-8;
    params.max_iterations = 400;
    CgResult result;
    if (audited) {
      CgAuditParams audit;
      audit.clean = [] { return true; };
      audit.interval = 7;
      result = cg_solve_audited(op, x, b, params, audit);
    } else {
      result = cg_solve(op, x, b, params);
    }
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.restarts, 0);
    *iterations = result.iterations;
    *residual = result.relative_residual;
  };
  int it_plain = 0, it_audited = 0;
  double res_plain = 0, res_audited = 0;
  solve(false, &it_plain, &res_plain);
  solve(true, &it_audited, &res_audited);
  // Checkpointing copies don't touch the iterates: identical arithmetic.
  EXPECT_EQ(it_plain, it_audited);
  EXPECT_EQ(res_plain, res_audited);
}

// The acceptance campaign: on a 2^6 machine, kill a link and spike another
// link's error rate; the health monitor must quarantine the dead node and
// retrain the marginal link; a partition allocated afterwards must avoid the
// quarantined node; and a CG job with undetected corruption injected must
// recover through the checksum-audit/restart path and converge -- all of it
// bit-identically across repeated runs.
struct CampaignOutcome {
  bool dead_node_quarantined = false;
  bool partition_avoids_dead_node = false;
  bool marginal_link_retrained = false;
  bool job_ok = false;
  bool converged = false;
  int iterations = 0;
  int restarts = 0;
  u64 audit_failures = 0;
  double residual = 0;
  double check_residual = 0;
  Cycle end_cycle = 0;
  u64 field_checksum = 0;  ///< FNV over every bit of the solution field
  u64 trace_digest = 0;    ///< the engine's event-order digest

  friend bool operator==(const CampaignOutcome&, const CampaignOutcome&) =
      default;
};

u64 field_bits_fnv(const DistField& f) {
  u64 h = sim::detail::kFnvOffset;
  for (int r = 0; r < f.ranks(); ++r) {
    for (const double v : f.data(r)) {
      h = sim::detail::fnv1a(h, std::bit_cast<u64>(v));
    }
  }
  return h;
}

CampaignOutcome run_campaign(int sim_threads = 1) {
  CampaignOutcome out;
  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 2, 2, 2, 2, 2};  // the full 64-node test mesh
  cfg.sim_threads = sim_threads;
  machine::Machine m(cfg);
  host::Qdaemon qd(&m);
  qd.boot();

  const NodeId dead{0};
  torus::Coord c1;
  c1.c = {1, 0, 0, 0, 0, 0};
  const NodeId marginal = m.topology().id(c1);
  const LinkIndex spike_link{4};  // dim 2, plus direction
  const NodeId spike_peer = m.topology().neighbor(marginal, spike_link);

  // Scheduled faults: one permanent link death, one bit-error-rate spike.
  sim::StatSet fstats;
  fault::FaultInjector injector(&m.mesh(), &fstats);
  fault::FaultPlan plan;
  plan.link_death(m.engine().now(), dead, LinkIndex{0});
  plan.ber_spike(m.engine().now(), marginal, spike_link, 2e-3,
                 /*duration=*/1 << 22);
  injector.arm(plan);
  m.engine().run_until(m.engine().now() + 1);  // deliver the fault events

  // Exercise the marginal link so its resend counters climb.
  auto& spike_recv = m.scu(spike_peer).recv_side(torus::facing_link(spike_link));
  spike_recv.set_data_sink([](u64) {});
  for (int i = 0; i < 300; ++i) {
    m.scu(marginal).send_side(spike_link).enqueue_data(
        0x9e3779b97f4a7c15ull * static_cast<u64>(i + 1));
  }
  m.engine().run_until_idle();
  spike_recv.clear_data_sink();

  // One health sweep: the dead wire fails its node, the resend burst marks
  // the marginal link degraded and retrains it.
  qd.health().sweep();
  out.dead_node_quarantined = qd.is_quarantined(dead) &&
                              qd.health().health(dead) ==
                                  host::NodeHealth::kFailed;
  out.marginal_link_retrained =
      m.mesh().wire(marginal, spike_link).times_trained() >= 2;

  // Allocation must route around the quarantined node.
  torus::Shape box;
  box.extent = {2, 2, 2, 2, 1, 1};
  auto handle = qd.allocate_partition("cg", box, 4);
  if (!handle) return out;
  out.partition_avoids_dead_node = true;
  for (const NodeId n : handle->partition->nodes()) {
    if (n == dead) out.partition_avoids_dead_node = false;
  }

  // Undetected corruption against a wire inside the partition: the next
  // data words accepted on it land bit-flipped, invisible to parity.  An odd
  // count keeps the additive checksum delta nonzero no matter what the data
  // is (an even number of top-bit flips cancels modulo 2^64).
  fault::ChecksumAuditor auditor(&m.mesh());
  fault::FaultPlan corruption;
  corruption.data_corruption(m.engine().now(),
                             handle->partition->nodes()[0], LinkIndex{0},
                             /*count=*/3);
  injector.arm(corruption);

  const auto job = qd.run_job(
      *handle, [&](comms::Communicator& comm, std::vector<std::string>& log) {
        GlobalGeometry geom(handle->partition, {4, 4, 4, 4});
        machine::BspRunner bsp(&m);
        cpu::CpuModel cpu(m.hw(), m.mem_timing());
        FieldOps ops(&bsp, &cpu, &comm);
        GaugeField gauge(&comm, &geom);
        Rng rng(77);
        gauge.randomize_near_unit(rng, 0.1);
        WilsonDirac op(&ops, &geom, &gauge, WilsonParams{.kappa = 0.12});
        DistField x = op.make_field("x");
        DistField b = op.make_field("b");
        x.zero();
        fill_by_global_site(geom, b);
        CgParams params;
        params.tolerance = 1e-8;
        params.max_iterations = 400;
        CgAuditParams audit;
        audit.clean = [&] { return auditor.clean_since_last(); };
        audit.interval = 5;
        audit.max_restarts = 6;
        const CgResult r = cg_solve_audited(op, x, b, params, audit);
        out.converged = r.converged;
        out.iterations = r.iterations;
        out.restarts = r.restarts;
        out.audit_failures = r.audit_failures;
        out.residual = r.relative_residual;
        out.check_residual = true_residual(op, x, b);
        out.field_checksum = field_bits_fnv(x);
        log.push_back("cg restarts: " + std::to_string(r.restarts));
      });
  out.job_ok = job.ok;
  out.end_cycle = m.engine().now();
  out.trace_digest = m.engine().trace_digest();
  return out;
}

TEST(FaultCampaign, DetectQuarantineRecoverAndSolve) {
  const CampaignOutcome out = run_campaign();
  EXPECT_TRUE(out.dead_node_quarantined);
  EXPECT_TRUE(out.marginal_link_retrained);
  EXPECT_TRUE(out.partition_avoids_dead_node);
  EXPECT_TRUE(out.job_ok);
  EXPECT_TRUE(out.converged);
  // The injected corruption forced at least one rollback, and the solver
  // still reached the true solution.
  EXPECT_GE(out.restarts, 1);
  EXPECT_GE(out.audit_failures, 1u);
  EXPECT_LT(out.residual, 1e-7);
  EXPECT_LT(out.check_residual, 1e-6);
}

TEST(FaultCampaign, WholeCampaignIsBitReproducible) {
  const CampaignOutcome a = run_campaign();
  const CampaignOutcome b = run_campaign();
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.residual, b.residual);
  EXPECT_EQ(a.end_cycle, b.end_cycle);
  EXPECT_EQ(a.field_checksum, b.field_checksum);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
}

// The same campaign on the parallel engine: faults, health verdicts, CG
// rollbacks, the solution field and the event-order digest must all be
// bit-identical to the serial run at every thread count.
TEST(FaultCampaign, WholeCampaignIsBitIdenticalAcrossEngines) {
  const CampaignOutcome serial = run_campaign(1);
  for (const int threads : {2, 4}) {
    const CampaignOutcome par = run_campaign(threads);
    EXPECT_TRUE(par == serial) << threads << " threads";
    EXPECT_EQ(par.trace_digest, serial.trace_digest) << threads << " threads";
    EXPECT_EQ(par.field_checksum, serial.field_checksum)
        << threads << " threads";
    EXPECT_EQ(par.end_cycle, serial.end_cycle) << threads << " threads";
  }
}

// --- Memory soft-error soak (SECDED ECC + scrub + machine-check rollback) ---

// A 10-iteration CG on the 2^6 machine under sustained memory upsets.
// Correctable single-bit flips are invisible to compute (the ECC datapath
// corrects every read) and get scrubbed in the background; one targeted
// uncorrectable hit on the solution vector latches a machine check, which
// the audited solver turns into a checkpoint rollback.  The end state must
// be bit-equal to the fault-free run.
struct MemSoakOutcome {
  bool job_ok = false;
  int iterations = 0;
  int restarts = 0;
  u64 mem_checks = 0;
  u64 residual_bits = 0;
  u64 field_checksum = 0;
  u64 upsets = 0;
  u64 corrected = 0;
  u64 uncorrectable = 0;
  u64 scrub_rows = 0;
  u64 scrub_cycles = 0;
};

MemSoakOutcome run_mem_soak(bool faulted, int sim_threads = 1) {
  MemSoakOutcome out;
  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 2, 2, 2, 2, 2};
  cfg.sim_threads = sim_threads;
  // Shrink the address space so the scrub cursor laps all of EDRAM and DDR
  // many times within one solve (the default 128 MB of DDR would need ~1 G
  // cycles per lap).
  cfg.mem.edram_words = 1 << 15;
  cfg.mem.ddr_words = 1 << 16;
  machine::Machine m(cfg);
  host::Qdaemon qd(&m);
  qd.boot();

  torus::Shape whole;
  whole.extent = cfg.shape.extent;
  auto handle = qd.allocate_partition("memsoak", whole, 4);
  if (!handle) return out;

  // The lattice fields all live in EDRAM; give every node a live DDR buffer
  // too so the campaign exercises both codeword geometries.
  for (const NodeId n : handle->partition->nodes()) {
    auto& mem = m.memory(n);
    const memsys::Block d =
        mem.alloc_in(memsys::Region::kDdr, 64, "soak.ddr");
    for (u64 w = 0; w < 64; ++w) {
      mem.write_word(d.word_addr + w, 0x5a5a0000ull + w);
    }
  }
  if (faulted) {
    memsys::ScrubConfig scrub;
    scrub.rows_per_period = 4096;  // full lap every ~5 bursts
    m.start_memory_scrubbers(scrub);
  }

  fault::FaultInjector injector(&m.mesh(), nullptr);
  fault::MemCheckAuditor mem_auditor(&m.mesh(), handle->partition->nodes());

  const auto job = qd.run_job(
      *handle, [&](comms::Communicator& comm, std::vector<std::string>& log) {
        GlobalGeometry geom(handle->partition, {4, 4, 4, 16});
        machine::BspRunner bsp(&m);
        cpu::CpuModel cpu(m.hw(), m.mem_timing());
        FieldOps ops(&bsp, &cpu, &comm);
        GaugeField gauge(&comm, &geom);
        Rng rng(2026);
        gauge.randomize_near_unit(rng, 0.12);
        WilsonDirac op(&ops, &geom, &gauge, WilsonParams{.kappa = 0.124});
        DistField x = op.make_field("x");
        DistField b = op.make_field("b");
        x.zero();
        fill_by_global_site(geom, b);

        CgParams params;
        params.fixed_iterations = 10;
        CgResult r;
        if (faulted) {
          const Cycle now = m.engine().now();
          // Sustained correctable upsets, entropy-addressed into every
          // node's allocated words, for the whole solve.
          injector.arm(fault::FaultPlan::sustained_mem_upsets(
              /*seed=*/99, cfg.shape, /*n=*/128, now, /*horizon=*/1 << 19,
              /*uncorrectable_fraction=*/0.0));
          // One targeted uncorrectable hit on the solution vector early in
          // the solve: detected at the next audit, rolled back, and the
          // checkpoint copy rewrites the poisoned word.
          fault::FaultPlan poison;
          poison.mem_upset(now + 50000, comm.node_of_rank(0),
                           x.block(0).word_addr + 3, /*bits=*/2, /*bit=*/11);
          injector.arm(poison);

          CgAuditParams audit;
          audit.mem_clean = [&] { return mem_auditor.clean_since_last(); };
          // interval >= fixed_iterations: a rollback goes all the way to
          // x0, so the clean rerun retraces the fault-free trajectory
          // bit for bit.
          audit.interval = params.fixed_iterations;
          r = cg_solve_audited(op, x, b, params, audit);
        } else {
          r = cg_solve(op, x, b, params);
        }
        out.iterations = r.iterations;
        out.restarts = r.restarts;
        out.mem_checks = r.mem_checks;
        out.residual_bits = std::bit_cast<u64>(r.relative_residual);
        out.field_checksum = field_bits_fnv(x);
        log.push_back("cg restarts: " + std::to_string(r.restarts));
      });
  out.job_ok = job.ok;
  const memsys::EccCounters total = m.mesh().total_ecc();
  out.upsets = total.upsets;
  out.corrected = total.corrected;
  out.uncorrectable = total.uncorrectable;
  out.scrub_rows = total.scrub_rows;
  out.scrub_cycles = total.scrub_cycles;
  return out;
}

TEST(MemSoak, SustainedUpsetsRollBackAndReachTheFaultFreeResidual) {
  const MemSoakOutcome clean = run_mem_soak(false);
  ASSERT_TRUE(clean.job_ok);
  EXPECT_EQ(clean.iterations, 10);
  EXPECT_EQ(clean.upsets, 0u);

  const MemSoakOutcome soaked = run_mem_soak(true);
  ASSERT_TRUE(soaked.job_ok);
  EXPECT_EQ(soaked.iterations, 10);
  // The uncorrectable hit forced at least one machine-check rollback...
  EXPECT_GE(soaked.restarts, 1);
  EXPECT_GE(soaked.mem_checks, 1u);
  EXPECT_GE(soaked.uncorrectable, 1u);
  // ...the sustained singles really happened and the scrubber corrected
  // some of them on its cycle budget...
  EXPECT_GT(soaked.upsets, 64u);
  EXPECT_GT(soaked.corrected, 0u);
  EXPECT_GT(soaked.scrub_rows, 0u);
  EXPECT_GT(soaked.scrub_cycles, 0u);
  // ...and the solve still landed on the bit-exact fault-free answer.
  EXPECT_EQ(soaked.residual_bits, clean.residual_bits);
  EXPECT_EQ(soaked.field_checksum, clean.field_checksum);
}

TEST(MemSoak, CampaignIsBitIdenticalAcrossEngines) {
  const MemSoakOutcome serial = run_mem_soak(true, 1);
  for (const int threads : {2, 4}) {
    const MemSoakOutcome par = run_mem_soak(true, threads);
    EXPECT_EQ(par.residual_bits, serial.residual_bits) << threads;
    EXPECT_EQ(par.field_checksum, serial.field_checksum) << threads;
    EXPECT_EQ(par.restarts, serial.restarts) << threads;
    EXPECT_EQ(par.mem_checks, serial.mem_checks) << threads;
    EXPECT_EQ(par.upsets, serial.upsets) << threads;
    EXPECT_EQ(par.corrected, serial.corrected) << threads;
    EXPECT_EQ(par.uncorrectable, serial.uncorrectable) << threads;
    EXPECT_EQ(par.scrub_rows, serial.scrub_rows) << threads;
  }
}

}  // namespace
}  // namespace qcdoc::lattice
