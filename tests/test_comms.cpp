#include <gtest/gtest.h>

#include "comms/comms.h"
#include "comms/global_sum.h"
#include "machine/bsp.h"

namespace qcdoc::comms {
namespace {

struct CommFixture {
  machine::Machine m;
  torus::Partition partition;
  Communicator comm;

  explicit CommFixture(std::array<int, 6> extents,
                       torus::FoldSpec fold = torus::FoldSpec::identity(4))
      : m([&] {
          machine::MachineConfig cfg;
          cfg.shape.extent = extents;
          return cfg;
        }()),
        partition(torus::Partition::whole_machine(m.topology(), fold)),
        comm(&m, &partition) {
    m.power_on();
  }
};

TEST(Communicator, ShiftMovesDataAroundARing) {
  CommFixture f({4, 1, 1, 1, 1, 1}, torus::FoldSpec::identity(1));
  const int n = f.comm.num_nodes();
  std::vector<scu::DmaDescriptor> sends(static_cast<std::size_t>(n));
  std::vector<scu::DmaDescriptor> recvs(static_cast<std::size_t>(n));
  std::vector<memsys::Block> src(static_cast<std::size_t>(n));
  std::vector<memsys::Block> dst(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    auto& mem = f.m.memory(f.comm.node_of_rank(r));
    src[static_cast<std::size_t>(r)] = mem.alloc(8, "src");
    dst[static_cast<std::size_t>(r)] = mem.alloc(8, "dst");
    for (u64 i = 0; i < 8; ++i) {
      mem.write_word(src[static_cast<std::size_t>(r)].word_addr + i,
                     static_cast<u64>(r) * 100 + i);
    }
    sends[static_cast<std::size_t>(r)] = scu::DmaDescriptor{
        src[static_cast<std::size_t>(r)].word_addr, 8, 1, 0};
    recvs[static_cast<std::size_t>(r)] = scu::DmaDescriptor{
        dst[static_cast<std::size_t>(r)].word_addr, 8, 1, 0};
  }
  f.comm.post_shift(0, torus::Dir::kPlus, sends, recvs);
  EXPECT_TRUE(f.m.mesh().drain());
  // Rank r's data landed at rank r+1.
  for (int r = 0; r < n; ++r) {
    const int from = (r - 1 + n) % n;
    auto& mem = f.m.memory(f.comm.node_of_rank(r));
    for (u64 i = 0; i < 8; ++i) {
      EXPECT_EQ(mem.read_word(dst[static_cast<std::size_t>(r)].word_addr + i),
                static_cast<u64>(from) * 100 + i);
    }
  }
}

TEST(Communicator, StoredDescriptorsStartWithOneWrite) {
  CommFixture f({2, 2, 1, 1, 1, 1}, torus::FoldSpec::identity(2));
  const int n = f.comm.num_nodes();
  // Uniform layout: same addresses on every node.
  std::vector<u64> src_addr(static_cast<std::size_t>(n));
  std::vector<u64> dst_addr(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    auto& mem = f.m.memory(f.comm.node_of_rank(r));
    src_addr[static_cast<std::size_t>(r)] = mem.alloc(4, "s").word_addr;
    dst_addr[static_cast<std::size_t>(r)] = mem.alloc(4, "d").word_addr;
    for (u64 i = 0; i < 4; ++i) {
      mem.write_word(src_addr[static_cast<std::size_t>(r)] + i,
                     static_cast<u64>(r + 1) * 10 + i);
    }
  }
  // Addresses are identical across ranks thanks to identical allocation
  // histories -- the uniform layout the stored-descriptor API expects.
  f.comm.store_shift(0, torus::Dir::kPlus,
                     scu::DmaDescriptor{src_addr[0], 4, 1, 0},
                     scu::DmaDescriptor{dst_addr[0], 4, 1, 0});
  f.comm.start_stored();
  EXPECT_TRUE(f.m.mesh().drain());
  for (int r = 0; r < n; ++r) {
    torus::Coord lc = f.partition.logical_coord(r);
    lc.c[0] = (lc.c[0] - 1 + 2) % 2;
    const int from = f.partition.rank(lc);
    auto& mem = f.m.memory(f.comm.node_of_rank(r));
    EXPECT_EQ(mem.read_word(dst_addr[static_cast<std::size_t>(r)]),
              static_cast<u64>(from + 1) * 10);
  }
}

TEST(Communicator, GlobalSumMatchesDirectSum) {
  CommFixture f({2, 2, 2, 2, 1, 1});
  std::vector<double> values;
  Rng rng(31);
  for (int r = 0; r < f.comm.num_nodes(); ++r) {
    values.push_back(rng.next_gaussian());
  }
  const auto result = f.comm.global_sum(values);
  const double direct = partition_global_sum(f.partition, values);
  EXPECT_EQ(result.value, direct);  // bitwise: canonical order
  EXPECT_GT(result.cycles, 0u);
}

TEST(Communicator, GlobalSumIsBitReproducible) {
  CommFixture f({2, 2, 2, 2, 1, 1});
  std::vector<double> values;
  Rng rng(32);
  for (int r = 0; r < f.comm.num_nodes(); ++r) {
    values.push_back(rng.next_gaussian() * 1e-3);
  }
  const double a = f.comm.global_sum(values).value;
  const double b = f.comm.global_sum(values).value;
  EXPECT_EQ(a, b);
}

TEST(Communicator, DoubledGlobalModeIsFaster) {
  CommFixture f({8, 2, 2, 2, 1, 1});
  std::vector<double> values(static_cast<std::size_t>(f.comm.num_nodes()), 1.0);
  const auto doubled = f.comm.global_sum(values, true);
  const auto single = f.comm.global_sum(values, false);
  EXPECT_LT(doubled.cycles, single.cycles);
  EXPECT_DOUBLE_EQ(doubled.value, single.value);
}

TEST(Communicator, BroadcastLatencyGrowsWithMachineSize) {
  CommFixture small_f({2, 2, 2, 2, 1, 1});
  CommFixture large_f({8, 8, 2, 2, 1, 1});
  EXPECT_LT(small_f.comm.broadcast_cycles(), large_f.comm.broadcast_cycles());
}

TEST(GlobalSum, DimensionWiseTimingMatchesRingModel) {
  CommFixture f({4, 4, 1, 1, 1, 1});
  scu::GlobalOpTiming t = f.comm.global_timing();
  const Cycle cycles = partition_global_sum_cycles(f.partition, t, true);
  // Two dimensions of extent 4 plus two trivial ones.
  std::vector<double> ring(4, 0.0);
  const Cycle one_ring = scu::ring_allreduce(t, ring, true).completion_cycles;
  EXPECT_EQ(cycles, 2 * one_ring);
}

TEST(GlobalSum, MultiWordSumsPipelinedNotRepeated) {
  CommFixture f({4, 4, 1, 1, 1, 1});
  scu::GlobalOpTiming t = f.comm.global_timing();
  const Cycle one = partition_global_sum_cycles(f.partition, t, true, 1);
  const Cycle four = partition_global_sum_cycles(f.partition, t, true, 4);
  EXPECT_GT(four, one);
  EXPECT_LT(four, 4 * one);  // pipelining beats four separate sums
}

}  // namespace
}  // namespace qcdoc::comms

namespace qcdoc::comms {
namespace {

TEST(Communicator, StoredDescriptorsRestartRepeatedly) {
  // Paper Section 3.3: "for repetitive transfers over the same link, the
  // SCU's can store DMA instructions internally, so that only a single
  // write (start transfer) is needed" -- the halo exchange of every CG
  // iteration reuses the stored descriptors.
  CommFixture f({2, 1, 1, 1, 1, 1}, torus::FoldSpec::identity(1));
  auto& mem0 = f.m.memory(f.comm.node_of_rank(0));
  auto& mem1 = f.m.memory(f.comm.node_of_rank(1));
  const auto src0 = mem0.alloc(4, "s");
  (void)mem1.alloc(4, "s");  // keep layouts uniform
  const auto dst0 = mem0.alloc(4, "d");
  (void)mem1.alloc(4, "d");
  f.comm.store_shift(0, torus::Dir::kPlus,
                     scu::DmaDescriptor{src0.word_addr, 4, 1, 0},
                     scu::DmaDescriptor{dst0.word_addr, 4, 1, 0});
  for (u64 round = 0; round < 5; ++round) {
    for (u64 i = 0; i < 4; ++i) {
      mem0.write_word(src0.word_addr + i, round * 100 + i);
      mem1.write_word(src0.word_addr + i, round * 200 + i);
    }
    f.comm.start_stored();  // one write per node restarts everything
    ASSERT_TRUE(f.m.mesh().drain());
    for (u64 i = 0; i < 4; ++i) {
      EXPECT_EQ(mem1.read_word(dst0.word_addr + i), round * 100 + i);
      EXPECT_EQ(mem0.read_word(dst0.word_addr + i), round * 200 + i);
    }
  }
  EXPECT_TRUE(f.m.mesh().verify_link_checksums());
}

}  // namespace
}  // namespace qcdoc::comms
