// Property tests for the half-precision block-floating-point codec: the
// documented guarantees in lattice/precision.h (round-trip bound, exact
// zeros, power-of-two scaling, overflow clamp, denormal-adjacent blocks)
// plus a seeded fuzz loop over random blocks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "lattice/precision.h"

namespace qcdoc::lattice {
namespace {

constexpr double kUlp15 = 1.0 / 32768.0;  // 2^-15

double max_abs(const std::vector<double>& v) {
  double m = 0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

std::vector<double> quantized(std::vector<double> v) {
  block_float_quantize(std::span<double>(v));
  return v;
}

TEST(BlockFloat, RoundTripWithinDocumentedBound) {
  std::vector<double> block = {1.0,   -0.25,  3.14159, -2.71828,
                               1e-3,  -0.999, 0.5,     4.0};
  const double amax = max_abs(block);
  const std::vector<double> q = quantized(block);
  for (std::size_t i = 0; i < block.size(); ++i) {
    EXPECT_LE(std::fabs(q[i] - block[i]), amax * kUlp15)
        << "word " << i << " of mixed-magnitude block";
  }
}

TEST(BlockFloat, AllZeroBlockIsExact) {
  std::vector<double> block(24, 0.0);
  std::vector<std::int16_t> mant(block.size());
  const std::int32_t e = block_float_encode(block, mant);
  for (std::int16_t m : mant) EXPECT_EQ(m, 0);
  std::vector<double> out(block.size(), 42.0);
  block_float_decode(e, mant, out);
  for (double v : out) EXPECT_EQ(v, 0.0);
}

TEST(BlockFloat, QuantizationIsIdempotent) {
  std::vector<double> block = {0.7, -1.3, 2.6, -0.001, 5.5, 0.0};
  const std::vector<double> once = quantized(block);
  const std::vector<double> twice = quantized(once);
  for (std::size_t i = 0; i < block.size(); ++i) {
    EXPECT_EQ(twice[i], once[i]) << "word " << i;
  }
}

TEST(BlockFloat, CommutesWithPowerOfTwoScaling) {
  // encode(2^k * block) must reuse the same mantissas with exponent e + k:
  // quantize then scale equals scale then quantize, bit for bit.
  const std::vector<double> block = {0.9, -0.33, 0.125, 1.75, -1.0, 0.01};
  for (int k : {-12, -3, 1, 7, 30}) {
    const double s = std::ldexp(1.0, k);
    std::vector<double> scaled = block;
    for (double& v : scaled) v *= s;

    std::vector<std::int16_t> mant_a(block.size()), mant_b(block.size());
    const std::int32_t ea =
        block_float_encode(std::span<const double>(block), mant_a);
    const std::int32_t eb =
        block_float_encode(std::span<const double>(scaled), mant_b);
    EXPECT_EQ(eb, ea + k) << "k = " << k;
    for (std::size_t i = 0; i < block.size(); ++i) {
      EXPECT_EQ(mant_b[i], mant_a[i]) << "k = " << k << ", word " << i;
    }

    const std::vector<double> qa = quantized(block);
    const std::vector<double> qb = quantized(scaled);
    for (std::size_t i = 0; i < block.size(); ++i) {
      EXPECT_EQ(qb[i], qa[i] * s) << "k = " << k << ", word " << i;
    }
  }
}

TEST(BlockFloat, OverflowCornerClampsToMaxMantissa) {
  // frexp puts the block max at mantissa ~0.999...; scaling by 2^15 and
  // rounding can land on exactly 32768, one past the int16 range.  The
  // value just below 1.0 exercises that corner: llround(0.99998... * 2^15)
  // rounds up to 32768 and must clamp to 32767.
  const double top = std::nextafter(1.0, 0.0);
  std::vector<double> block = {top, -top, 0.5};
  std::vector<std::int16_t> mant(block.size());
  const std::int32_t e =
      block_float_encode(std::span<const double>(block), mant);
  EXPECT_EQ(mant[0], 32767);
  EXPECT_EQ(mant[1], -32767);
  std::vector<double> out(block.size());
  block_float_decode(e, mant, out);
  EXPECT_LE(std::fabs(out[0] - top), top * kUlp15);
  EXPECT_LE(std::fabs(out[1] + top), top * kUlp15);
}

TEST(BlockFloat, HugeMagnitudesSurvive) {
  const double big = std::ldexp(1.0, 1000);
  std::vector<double> block = {big, -big / 2, big / 4};
  const std::vector<double> q = quantized(block);
  for (std::size_t i = 0; i < block.size(); ++i) {
    EXPECT_LE(std::fabs(q[i] - block[i]), big * kUlp15) << "word " << i;
    EXPECT_TRUE(std::isfinite(q[i]));
  }
}

TEST(BlockFloat, DenormalAdjacentBlocksFlushSafely) {
  // Blocks whose max sits near DBL_MIN: mantissa * 2^(e-15) pushes into
  // (or below) the denormal range.  The codec must stay finite, within the
  // documented bound, and never produce UB garbage.
  const double tiny = std::numeric_limits<double>::min();  // 2^-1022
  for (double scale : {1.0, 1.0 / 16.0, kUlp15, kUlp15 * kUlp15}) {
    std::vector<double> block = {tiny * scale, -tiny * scale / 2.0,
                                 tiny * scale / 3.0, 0.0};
    const double amax = max_abs(block);
    const std::vector<double> q = quantized(block);
    for (std::size_t i = 0; i < block.size(); ++i) {
      EXPECT_TRUE(std::isfinite(q[i]));
      EXPECT_LE(std::fabs(q[i] - block[i]), amax * kUlp15)
          << "scale " << scale << ", word " << i;
    }
    EXPECT_EQ(q[3], 0.0);
  }
}

TEST(BlockFloat, PreservesOrderWithinBlock) {
  // Shared-exponent rounding is monotone: if a <= b then q(a) <= q(b)
  // (mantissas come from the same llround of a scaled value).
  Rng rng(314159);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<double> block(16);
    for (double& v : block) v = 20.0 * (rng.next_double() - 0.5);
    std::vector<double> sorted = block;
    std::sort(sorted.begin(), sorted.end());
    const std::vector<double> q = quantized(sorted);
    for (std::size_t i = 1; i < q.size(); ++i) {
      EXPECT_LE(q[i - 1], q[i]) << "rep " << rep << ", word " << i;
    }
  }
}

TEST(BlockFloat, FuzzRoundTripBound) {
  // Random blocks across wildly different scales; every word must satisfy
  // the documented round-trip bound and quantization must be idempotent.
  Rng rng(20260809);
  for (int rep = 0; rep < 500; ++rep) {
    const std::size_t n = 1 + rng.next_below(64);
    const int scale_exp = static_cast<int>(rng.next_below(601)) - 300;
    std::vector<double> block(n);
    for (double& v : block) {
      v = std::ldexp(rng.next_gaussian(), scale_exp);
      if (rng.next_bool(0.05)) v = 0.0;  // sprinkle exact zeros
    }
    const double amax = max_abs(block);
    const std::vector<double> q = quantized(block);
    const std::vector<double> q2 = quantized(q);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_LE(std::fabs(q[i] - block[i]), amax * kUlp15)
          << "rep " << rep << ", word " << i;
      ASSERT_EQ(q2[i], q[i]) << "rep " << rep << ", word " << i;
    }
  }
}

TEST(QuantizeInPlace, DoubleIsIdentitySingleRoundsHalfBlocks) {
  Rng rng(77);
  std::vector<double> data(48);
  for (double& v : data) v = rng.next_gaussian();

  std::vector<double> d = data;
  quantize_in_place(std::span<double>(d), Precision::kDouble, 24);
  for (std::size_t i = 0; i < data.size(); ++i) EXPECT_EQ(d[i], data[i]);

  std::vector<double> s = data;
  quantize_in_place(std::span<double>(s), Precision::kSingle, 24);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(s[i], static_cast<double>(static_cast<float>(data[i])));
  }

  // Half must quantize per block_words block: block 0 and block 1 get
  // independent shared exponents, matching a manual per-block quantize.
  std::vector<double> h = data;
  quantize_in_place(std::span<double>(h), Precision::kHalf, 24);
  std::vector<double> manual = data;
  block_float_quantize(std::span<double>(manual).subspan(0, 24));
  block_float_quantize(std::span<double>(manual).subspan(24, 24));
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(h[i], manual[i]) << "word " << i;
  }
}

TEST(Precision, TrafficWidthsAndNames) {
  EXPECT_EQ(bytes_per_double(Precision::kDouble), 8.0);
  EXPECT_EQ(bytes_per_double(Precision::kSingle), 4.0);
  EXPECT_EQ(bytes_per_double(Precision::kHalf), 2.25);
  EXPECT_STREQ(precision_name(Precision::kDouble), "double");
  EXPECT_STREQ(precision_name(Precision::kSingle), "single");
  EXPECT_STREQ(precision_name(Precision::kHalf), "half");
}

}  // namespace
}  // namespace qcdoc::lattice
