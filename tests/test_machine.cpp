#include <gtest/gtest.h>

#include <map>

#include "machine/bsp.h"
#include "machine/cost.h"
#include "machine/machine.h"
#include "machine/packaging.h"
#include "machine/qcdsp.h"

namespace qcdoc::machine {
namespace {

TEST(Packaging, PaperCounts4096NodeMachine) {
  // Section 4: 2048 daughterboards, 64 motherboards, 4 cabinets, 768 cables.
  const auto plan = plan_for_nodes(4096, 1e9);
  EXPECT_EQ(plan.daughterboards, 2048);
  EXPECT_EQ(plan.motherboards, 64);
  EXPECT_EQ(plan.crates, 8);
  EXPECT_EQ(plan.racks, 4);
  EXPECT_EQ(plan.cables, 768);
  EXPECT_NEAR(plan.peak_flops / 1e12, 4.096, 1e-9);
}

TEST(Packaging, RackIsOneTeraflopsUnderTenKilowatts) {
  // Section 2.4: a water-cooled rack of 1024 nodes gives 1.0 Tflops peak
  // and consumes less than 10,000 watts.
  const auto plan = plan_for_nodes(1024, 1e9);
  EXPECT_EQ(plan.racks, 1);
  EXPECT_NEAR(plan.peak_flops / 1e12, 1.024, 1e-9);
  EXPECT_LT(plan.power_watts, 10000.0);
}

TEST(Packaging, TenThousandNodesInSixtySquareFeet) {
  const auto plan = plan_for_nodes(10240, 1e9);
  EXPECT_NEAR(plan.footprint_sqft, 60.0, 5.0);
}

TEST(Packaging, TwelveK288MachineIsTenTeraflops) {
  HwParams hw;
  hw.cpu_clock_hz = 420e6;
  const auto plan = plan_for_nodes(12288, hw.peak_flops_per_node());
  EXPECT_GT(plan.peak_flops / 1e12, 10.0);  // "10+ Teraflops"
}

TEST(PackageMap, MotherboardIs64NodeHypercube) {
  torus::Shape shape;
  shape.extent = {8, 4, 4, 2, 2, 2};
  const torus::Torus t(shape);
  const PackageMap map(t);
  EXPECT_EQ(map.motherboards(), 16);  // 1024 / 64
  // Count nodes on motherboard 0.
  int on_mb0 = 0;
  for (int n = 0; n < t.num_nodes(); ++n) {
    if (map.locate(NodeId{static_cast<u32>(n)}).motherboard == 0) ++on_mb0;
  }
  EXPECT_EQ(on_mb0, 64);
  // Nodes on the same motherboard differ only in the low bit of each dim.
  const auto loc0 = map.locate(NodeId{0});
  EXPECT_EQ(loc0.motherboard, 0);
  EXPECT_EQ(loc0.crate, 0);
  EXPECT_EQ(loc0.rack, 0);
}

TEST(PackageMap, DaughterboardsPairTwoNodes) {
  torus::Shape shape;
  shape.extent = {4, 4, 2, 2, 1, 1};
  const torus::Torus t(shape);
  const PackageMap map(t);
  // Every (motherboard, daughterboard) slot must hold exactly 2 nodes.
  std::map<std::pair<int, int>, int> slot_count;
  for (int n = 0; n < t.num_nodes(); ++n) {
    const auto loc = map.locate(NodeId{static_cast<u32>(n)});
    slot_count[{loc.motherboard, loc.daughterboard}]++;
  }
  for (const auto& [slot, count] : slot_count) EXPECT_EQ(count, 2);
}

TEST(Cost, Reproduces4096NodeMachineCost) {
  // Section 4: $1,610,442 parts, $1,709,601 with prorated R&D.
  const CostModel cost;
  const auto plan = plan_for_nodes(4096, 1e9);
  EXPECT_NEAR(cost.parts_cost(plan), 1610442.0, 1500.0);
  EXPECT_NEAR(cost.total_cost(plan), 1709601.0, 1500.0);
}

TEST(Cost, PricePerMflopsAtPaperClockSpeeds) {
  // Section 4: $1.29 at 360 MHz, $1.10 at 420 MHz, $1.03 at 450 MHz, all
  // at 45% sustained efficiency on the 4096-node machine.
  const CostModel cost;
  const auto plan = plan_for_nodes(4096, 1e9);
  EXPECT_NEAR(cost.usd_per_sustained_mflops(plan, 360e6, 0.45), 1.29, 0.01);
  EXPECT_NEAR(cost.usd_per_sustained_mflops(plan, 420e6, 0.45), 1.10, 0.01);
  EXPECT_NEAR(cost.usd_per_sustained_mflops(plan, 450e6, 0.45), 1.03, 0.01);
}

TEST(Cost, VolumeDiscountApproachesDollarTarget) {
  // "For the full size 12,288 machines, the cost per node will be reduced
  // ... very close to our targeted $1 per sustained Megaflops."
  const CostModel cost;
  const auto plan = plan_for_nodes(12288, 1e9);
  const double usd = cost.usd_per_sustained_mflops(plan, 450e6, 0.45);
  EXPECT_LT(usd, 1.05);
  EXPECT_GT(usd, 0.85);
}

TEST(Machine, BuildsAndTrains) {
  MachineConfig cfg;
  cfg.shape.extent = {2, 2, 2, 1, 1, 1};
  Machine m(cfg);
  EXPECT_EQ(m.num_nodes(), 8);
  const Cycle training = m.power_on();
  EXPECT_GT(training, 0u);
  EXPECT_TRUE(m.mesh().all_trained());
}

TEST(Machine, ClockScalingAffectsDdrCyclesPerByte) {
  MachineConfig slow_cfg;
  slow_cfg.shape.extent = {2, 1, 1, 1, 1, 1};
  slow_cfg.clock_hz = 360e6;
  Machine slow(slow_cfg);
  MachineConfig fast_cfg = slow_cfg;
  fast_cfg.clock_hz = 500e6;
  Machine fast(fast_cfg);
  // DDR is a fixed-frequency part: at a faster core clock it delivers
  // fewer bytes per cycle.
  EXPECT_GT(slow.mem_timing().ddr_bytes_per_cycle,
            fast.mem_timing().ddr_bytes_per_cycle);
  // EDRAM scales with the clock: same bytes per cycle.
  EXPECT_DOUBLE_EQ(slow.mem_timing().edram_bytes_per_cycle,
                   fast.mem_timing().edram_bytes_per_cycle);
}

TEST(Bsp, AccountsPhases) {
  MachineConfig cfg;
  cfg.shape.extent = {2, 1, 1, 1, 1, 1};
  Machine m(cfg);
  m.power_on();
  BspRunner bsp(&m);
  const Cycle t0 = bsp.now();
  bsp.compute(1000);
  EXPECT_EQ(bsp.now(), t0 + 1000);
  bsp.global_op(500);
  EXPECT_EQ(bsp.now(), t0 + 1500);
  EXPECT_DOUBLE_EQ(bsp.compute_cycles(), 1000.0);
  EXPECT_DOUBLE_EQ(bsp.global_cycles(), 500.0);
}

TEST(Bsp, OverlapHidesCommunicationUnderCompute) {
  MachineConfig cfg;
  cfg.shape.extent = {2, 1, 1, 1, 1, 1};
  Machine m(cfg);
  m.power_on();
  BspRunner bsp(&m);

  auto src = m.memory(NodeId{0}).alloc(8, "src");
  auto dst = m.memory(NodeId{1}).alloc(8, "dst");
  const auto link = torus::link_index(0, torus::Dir::kPlus);
  const Cycle t0 = bsp.now();
  bsp.overlap(100000, [&] {
    m.scu(NodeId{1})
        .recv_dma(torus::facing_link(link))
        .start(scu::DmaDescriptor{dst.word_addr, 8, 1, 0});
    m.scu(NodeId{0}).send_dma(link).start(
        scu::DmaDescriptor{src.word_addr, 8, 1, 0});
  });
  // 8 words is far cheaper than 100k cycles of compute: fully hidden.
  EXPECT_EQ(bsp.now() - t0, 100000u);
  EXPECT_DOUBLE_EQ(bsp.comm_cycles(), 0.0);
  EXPECT_GT(bsp.overlap_hidden_cycles(), 0.0);
}

}  // namespace
}  // namespace qcdoc::machine

namespace qcdoc::machine {
namespace {

TEST(Qcdsp, PublishedFiguresAndGenerationalGain) {
  const QcdspModel qcdsp;
  // 12,288 DSP nodes at 50 Mflops ~ 0.6 Tflops peak (the "1 Teraflops with
  // 20,000 nodes" scale).
  EXPECT_NEAR(qcdsp.rbrc_peak_tflops(), 0.61, 0.01);
  EXPECT_EQ(qcdsp.mesh_dims, 4);
  const CostModel cost;
  const auto plan = plan_for_nodes(4096, 1e9);
  // "a price performance of $10/sustained Megaflops" vs QCDOC's ~$1: the
  // generational improvement the paper is named for.
  const double gain = qcdsp.qcdoc_improvement(cost, plan, 450e6, 0.45);
  EXPECT_GT(gain, 9.0);
  EXPECT_LT(gain, 11.0);
}

}  // namespace
}  // namespace qcdoc::machine
