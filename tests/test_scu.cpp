#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "scu/dma.h"
#include "scu/global_ops.h"
#include "scu/link.h"
#include "scu/packet.h"
#include "sim/engine.h"

namespace qcdoc::scu {
namespace {

// --- Packet format ----------------------------------------------------------

TEST(Packet, FrameBitsMatchPaper) {
  // 8-bit header + 64-bit word = 72 bits for data and supervisor packets;
  // partition interrupts and acks are short 16-bit frames.
  EXPECT_EQ(frame_bits(PacketType::kData), 72);
  EXPECT_EQ(frame_bits(PacketType::kSupervisor), 72);
  EXPECT_EQ(frame_bits(PacketType::kPartitionIrq), 16);
  EXPECT_EQ(frame_bits(PacketType::kAck), 16);
}

TEST(Packet, EncodeDecodeRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    Packet p;
    p.type = (i % 2) ? PacketType::kData : PacketType::kSupervisor;
    p.payload = rng.next_u64();
    p.seq = static_cast<u8>(i & 3);
    const auto decoded = decode(encode(p));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->type, p.type);
    EXPECT_EQ(decoded->payload, p.payload);
    EXPECT_EQ(decoded->seq, p.seq);
  }
}

TEST(Packet, ShortFrameRoundTrip) {
  for (int v = 0; v < 256; ++v) {
    Packet p{PacketType::kPartitionIrq, static_cast<u64>(v), 0};
    const auto decoded = decode(encode(p));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->payload, static_cast<u64>(v));
  }
}

TEST(Packet, EverySingleBitErrorIsDetectedOrHarmless) {
  // The paper: type codes are chosen "so that a single bit error will not
  // cause a packet to be misinterpreted".  Flip every bit position of many
  // frames: decode must either fail (detected -> resend) or, if it
  // succeeds, reproduce the original content exactly (flip in an unused
  // padding position cannot exist in our dense frames, so success with
  // altered content would be a misinterpretation).
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Packet p;
    p.type = PacketType::kData;
    p.payload = rng.next_u64();
    p.seq = static_cast<u8>(trial & 3);
    const WireFrame clean = encode(p);
    for (int bit = 0; bit < clean.bits; ++bit) {
      WireFrame corrupted = clean;
      corrupted.bytes[static_cast<std::size_t>(bit / 8)] ^=
          static_cast<u8>(1u << (bit % 8));
      const auto decoded = decode(corrupted);
      if (decoded.has_value()) {
        // A seq-field flip decodes fine but is caught by the window
        // protocol; any other field must be intact.
        EXPECT_EQ(decoded->type, p.type);
        EXPECT_EQ(decoded->payload, p.payload);
        EXPECT_NE(decoded->seq, p.seq);
      }
    }
  }
}

TEST(Packet, CorruptFlipsExactlyNBits) {
  Packet p{PacketType::kData, 0xdeadbeefcafef00dull, 2};
  WireFrame f = encode(p);
  const WireFrame orig = f;
  Rng rng(3);
  f.corrupt(5, rng);
  int flipped = 0;
  for (std::size_t i = 0; i < f.bytes.size(); ++i) {
    u8 diff = static_cast<u8>(f.bytes[i] ^ orig.bytes[i]);
    while (diff) {
      flipped += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped, 5);
}

// --- Link protocol harness --------------------------------------------------

struct LinkPair {
  sim::SerialEngine engine;
  sim::StatSet stats;
  hssl::HsslConfig hssl_cfg;
  std::unique_ptr<hssl::Hssl> wire_ab, wire_ba;
  std::unique_ptr<SendSide> send_a, send_b;
  std::unique_ptr<RecvSide> recv_a, recv_b;  // recv_b receives from A

  explicit LinkPair(double ber = 0.0, LinkParams params = LinkParams{}) {
    hssl_cfg.training_cycles = 16;
    hssl_cfg.bit_error_rate = ber;
    Rng rng(42);
    wire_ab = std::make_unique<hssl::Hssl>(&engine, hssl_cfg, rng.split(), &stats);
    wire_ba = std::make_unique<hssl::Hssl>(&engine, hssl_cfg, rng.split(), &stats);
    send_a = std::make_unique<SendSide>(&engine, wire_ab.get(), params, &stats);
    send_b = std::make_unique<SendSide>(&engine, wire_ba.get(), params, &stats);
    recv_a = std::make_unique<RecvSide>(&engine, params, &stats, rng.split());
    recv_b = std::make_unique<RecvSide>(&engine, params, &stats, rng.split());
    send_a->set_remote(recv_b.get());
    send_b->set_remote(recv_a.get());
    recv_b->set_reverse(send_b.get());
    recv_a->set_reverse(send_a.get());
    wire_ab->power_on();
    wire_ba->power_on();
  }
};

TEST(Link, DeliversDataInOrder) {
  LinkPair link;
  std::vector<u64> got;
  link.recv_b->set_data_sink([&](u64 w) { got.push_back(w); });
  for (u64 i = 0; i < 20; ++i) link.send_a->enqueue_data(1000 + i);
  link.engine.run_until_idle();
  ASSERT_EQ(got.size(), 20u);
  for (u64 i = 0; i < 20; ++i) EXPECT_EQ(got[i], 1000 + i);
  EXPECT_TRUE(link.send_a->data_drained());
  EXPECT_EQ(link.send_a->checksum(), link.recv_b->checksum());
}

TEST(Link, ThreeInTheAirSustainsFullBandwidth) {
  // With the window-3 protocol, back-to-back 72-bit frames should saturate
  // the serial wire: N words take ~N*72 cycles despite the ack round trip.
  LinkPair link;
  link.recv_b->set_data_sink([](u64) {});
  const int n = 200;
  for (int i = 0; i < n; ++i) link.send_a->enqueue_data(static_cast<u64>(i));
  link.engine.run_until_idle();
  const Cycle elapsed = link.engine.now();
  // training (16) + n*72 serialization + protocol tail; allow 15% slack.
  EXPECT_LT(elapsed, static_cast<Cycle>(16 + n * 72 * 1.15));
  EXPECT_EQ(link.send_a->resends(), 0u);
}

TEST(Link, WindowOfOneIsRoundTripLimited) {
  LinkParams params;
  params.ack_window = 1;
  LinkPair link(0.0, params);
  link.recv_b->set_data_sink([](u64) {});
  const int n = 50;
  for (int i = 0; i < n; ++i) link.send_a->enqueue_data(static_cast<u64>(i));
  link.engine.run_until_idle();
  // Each word now waits for its ack (72 + wire + 16 + wire) before the next
  // can go: strictly slower than the pipelined case.
  EXPECT_GT(link.engine.now(), static_cast<Cycle>(n * (72 + 16)));
}

TEST(Link, IdleReceiveHoldsThreeWordsAndBlocksSender) {
  LinkPair link;
  for (u64 i = 0; i < 10; ++i) link.send_a->enqueue_data(i);
  // No sink installed: the receiver may hold at most 3 words unacked.
  for (int step = 0; step < 20000 && link.engine.step();) {
    ++step;
    if (link.engine.now() > 5000) break;
  }
  EXPECT_EQ(link.recv_b->held_words(), 3);
  EXPECT_FALSE(link.send_a->data_drained());
  // Programming the destination drains the held words and unblocks.
  std::vector<u64> got;
  link.recv_b->set_data_sink([&](u64 w) { got.push_back(w); });
  link.engine.run_until_idle();
  ASSERT_EQ(got.size(), 10u);
  for (u64 i = 0; i < 10; ++i) EXPECT_EQ(got[i], i);
  EXPECT_TRUE(link.send_a->data_drained());
}

TEST(Link, SingleBitErrorsAreRepairedByAutomaticResend) {
  LinkPair link(2e-4);  // roughly one flip per ~70 frames
  std::vector<u64> got;
  link.recv_b->set_data_sink([&](u64 w) { got.push_back(w); });
  Rng payloads(5);
  std::vector<u64> sent;
  for (int i = 0; i < 500; ++i) {
    sent.push_back(payloads.next_u64());
    link.send_a->enqueue_data(sent.back());
  }
  link.engine.run_until_idle();
  ASSERT_EQ(got.size(), sent.size());
  EXPECT_EQ(got, sent);
  EXPECT_EQ(link.send_a->checksum(), link.recv_b->checksum());
  // Errors must actually have occurred for this test to mean anything.
  EXPECT_GT(link.recv_b->detected_errors() + link.send_a->resends(), 0u);
}

TEST(Link, SupervisorPacketRaisesHandlerAndTakesPriority) {
  LinkPair link;
  u64 sup_word = 0;
  link.recv_b->set_supervisor_handler([&](u64 w) { sup_word = w; });
  link.recv_b->set_data_sink([](u64) {});
  for (u64 i = 0; i < 50; ++i) link.send_a->enqueue_data(i);
  link.send_a->enqueue_supervisor(0xabcdull);
  link.engine.run_until_idle();
  EXPECT_EQ(sup_word, 0xabcdull);
  EXPECT_TRUE(link.send_a->supervisor_drained());
}

TEST(Link, ChecksumExposesUndetectedCorruption) {
  // Force heavy corruption; whenever multi-bit flips slip past parity the
  // end-to-end checksums must disagree -- the paper's final confirmation.
  LinkParams params;
  params.resend_timeout_cycles = 512;
  LinkPair link(5e-3, params);
  link.recv_b->set_data_sink([](u64) {});
  Rng payloads(6);
  for (int i = 0; i < 2000; ++i) link.send_a->enqueue_data(payloads.next_u64());
  link.engine.run_until_idle();
  if (link.recv_b->undetected_errors() > 0) {
    EXPECT_NE(link.send_a->checksum(), link.recv_b->checksum());
  } else {
    EXPECT_EQ(link.send_a->checksum(), link.recv_b->checksum());
  }
}

// --- DMA engines ------------------------------------------------------------

TEST(Dma, DescriptorAddressesBlockStrided) {
  DmaDescriptor d;
  d.base_word = 100;
  d.block_words = 4;
  d.num_blocks = 3;
  d.stride_words = 10;
  EXPECT_EQ(d.total_words(), 12u);
  EXPECT_EQ(d.word_addr(0), 100u);
  EXPECT_EQ(d.word_addr(3), 103u);
  EXPECT_EQ(d.word_addr(4), 110u);
  EXPECT_EQ(d.word_addr(11), 123u);
}

TEST(Dma, MemoryToMemoryTransferMatchesPaperLatency) {
  LinkPair link;
  memsys::MemConfig mc;
  memsys::NodeMemory mem_a(mc), mem_b(mc);
  const auto src = mem_a.alloc(32, "src");
  const auto dst = mem_b.alloc(32, "dst");
  for (u64 i = 0; i < 32; ++i) mem_a.write_word(src.word_addr + i, 7000 + i);

  DmaTiming timing;  // 150-cycle setup, 66-cycle landing
  SendDma send(&link.engine, &mem_a, link.send_a.get(), timing);
  RecvDma recv(&link.engine, &mem_b, link.recv_b.get(), timing);

  DmaDescriptor d;
  d.base_word = src.word_addr;
  d.block_words = 32;
  recv.start(DmaDescriptor{dst.word_addr, 32, 1, 0});
  // Let training complete so latency measures the transfer itself.
  link.engine.run_until(64);
  const Cycle start = link.engine.now();
  send.start(d);
  link.engine.run_until_idle();

  for (u64 i = 0; i < 32; ++i) {
    EXPECT_EQ(mem_b.read_word(dst.word_addr + i), 7000 + i);
  }
  // First-word memory-to-memory: setup 150 + 72-bit frame + wire 2 +
  // landing 66 = 290 cycles = 580 ns at 500 MHz (paper: "about 600 ns").
  const Cycle first = recv.first_word_landed_at() - start;
  EXPECT_EQ(first, 290u);
  // Remaining 31 words stream at 72 cycles each (paper: 24 words = 600 ns
  // + 3.3 us).
  const Cycle last = recv.last_word_landed_at() - start;
  EXPECT_NEAR(static_cast<double>(last - first), 31 * 72, 8.0);
}

TEST(Dma, SendMayStartBeforeReceiveIsProgrammed) {
  // Paper Section 3.3: "the temporal ordering of a start send on one node
  // and start receive on another is not important".
  LinkPair link;
  memsys::NodeMemory mem_a, mem_b;
  const auto src = mem_a.alloc(16, "src");
  const auto dst = mem_b.alloc(16, "dst");
  for (u64 i = 0; i < 16; ++i) mem_a.write_word(src.word_addr + i, 42 + i);

  SendDma send(&link.engine, &mem_a, link.send_a.get(), DmaTiming{});
  RecvDma recv(&link.engine, &mem_b, link.recv_b.get(), DmaTiming{});
  send.start(DmaDescriptor{src.word_addr, 16, 1, 0});
  // Run a while with no receive programmed: idle receive blocks the sender.
  link.engine.run_until(20000);
  EXPECT_FALSE(send.active() == false);  // still in flight
  bool done = false;
  recv.start(DmaDescriptor{dst.word_addr, 16, 1, 0}, [&] { done = true; });
  link.engine.run_until_idle();
  EXPECT_TRUE(done);
  for (u64 i = 0; i < 16; ++i) {
    EXPECT_EQ(mem_b.read_word(dst.word_addr + i), 42 + i);
  }
}

// --- Global operations ------------------------------------------------------

TEST(GlobalOps, RingAllreduceSumsAndReportsHops) {
  GlobalOpTiming t;
  std::vector<double> values{1.0, 2.5, -0.5, 3.0};
  const auto single = ring_allreduce(t, values, false);
  EXPECT_DOUBLE_EQ(single.sum, 6.0);
  EXPECT_EQ(single.max_hops, 3u);  // N-1 hops
  const auto doubled = ring_allreduce(t, values, true);
  EXPECT_DOUBLE_EQ(doubled.sum, 6.0);
  EXPECT_EQ(doubled.max_hops, 2u);  // N/2 hops with the doubled link sets
  EXPECT_LT(doubled.completion_cycles, single.completion_cycles);
}

TEST(GlobalOps, DoubledModeHalvesHopCountAcrossSizes) {
  GlobalOpTiming t;
  for (int n : {2, 4, 8, 16, 32}) {
    std::vector<double> values(static_cast<std::size_t>(n), 1.0);
    const auto single = ring_allreduce(t, values, false);
    const auto doubled = ring_allreduce(t, values, true);
    EXPECT_EQ(single.max_hops, static_cast<u64>(n - 1));
    EXPECT_EQ(doubled.max_hops, static_cast<u64>(n / 2));
    EXPECT_DOUBLE_EQ(single.sum, static_cast<double>(n));
  }
}

TEST(GlobalOps, CutThroughBeatsStoreAndForwardForBroadcast) {
  GlobalOpTiming cut;
  GlobalOpTiming sf = cut;
  sf.cut_through = false;
  const int n = 16;
  const auto fast = ring_broadcast(cut, n, false);
  const auto slow = ring_broadcast(sf, n, false);
  EXPECT_LT(fast.completion_cycles, slow.completion_cycles);
  // Per-hop latency: 8 bits instead of 72 bits.
  const auto hops = static_cast<Cycle>(n - 2);
  EXPECT_EQ(slow.completion_cycles - fast.completion_cycles,
            hops * static_cast<Cycle>(cut.frame_bits - cut.passthrough_bits));
}

TEST(GlobalOps, SumIsBitReproducible) {
  GlobalOpTiming t;
  std::vector<double> values;
  Rng rng(17);
  for (int i = 0; i < 64; ++i) values.push_back(rng.next_gaussian());
  const double s1 = ring_allreduce(t, values, true).sum;
  const double s2 = ring_allreduce(t, values, true).sum;
  const double s3 = ring_allreduce(t, values, false).sum;
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1, s3);  // canonical order regardless of mode
}

TEST(GlobalOps, TrivialRing) {
  GlobalOpTiming t;
  std::vector<double> one{5.0};
  const auto r = ring_allreduce(t, one, true);
  EXPECT_DOUBLE_EQ(r.sum, 5.0);
  EXPECT_EQ(r.completion_cycles, 0u);
}

}  // namespace
}  // namespace qcdoc::scu

namespace qcdoc::scu {
namespace {

TEST(Link, SupervisorQueueDeliversInOrder) {
  LinkPair link;
  std::vector<u64> got;
  link.recv_b->set_supervisor_handler([&](u64 w) { got.push_back(w); });
  for (u64 i = 0; i < 8; ++i) link.send_a->enqueue_supervisor(100 + i);
  link.engine.run_until_idle();
  ASSERT_EQ(got.size(), 8u);
  for (u64 i = 0; i < 8; ++i) EXPECT_EQ(got[i], 100 + i);
  EXPECT_TRUE(link.send_a->supervisor_drained());
}

TEST(Link, SupervisorSurvivesCorruptedAcks) {
  LinkParams params;
  params.resend_timeout_cycles = 256;
  LinkPair link(2e-3, params);
  std::vector<u64> got;
  link.recv_b->set_supervisor_handler([&](u64 w) { got.push_back(w); });
  for (u64 i = 0; i < 20; ++i) link.send_a->enqueue_supervisor(i);
  link.engine.run_until_idle();
  // Exactly-once delivery in order, despite corrupted frames and SupAcks.
  ASSERT_EQ(got.size(), 20u);
  for (u64 i = 0; i < 20; ++i) EXPECT_EQ(got[i], i);
}

TEST(Link, BidirectionalTrafficSharesTheWirePair) {
  LinkPair link;
  std::vector<u64> at_b, at_a;
  link.recv_b->set_data_sink([&](u64 w) { at_b.push_back(w); });
  link.recv_a->set_data_sink([&](u64 w) { at_a.push_back(w); });
  for (u64 i = 0; i < 50; ++i) {
    link.send_a->enqueue_data(1000 + i);
    link.send_b->enqueue_data(2000 + i);
  }
  link.engine.run_until_idle();
  ASSERT_EQ(at_b.size(), 50u);
  ASSERT_EQ(at_a.size(), 50u);
  for (u64 i = 0; i < 50; ++i) {
    EXPECT_EQ(at_b[i], 1000 + i);
    EXPECT_EQ(at_a[i], 2000 + i);
  }
  // Both directions' checksums close.
  EXPECT_EQ(link.send_a->checksum(), link.recv_b->checksum());
  EXPECT_EQ(link.send_b->checksum(), link.recv_a->checksum());
}

TEST(Dma, BlockStridedTransferGathersAndScatters) {
  LinkPair link;
  memsys::NodeMemory mem_a, mem_b;
  const auto src = mem_a.alloc(64, "src");
  const auto dst = mem_b.alloc(64, "dst");
  for (u64 i = 0; i < 64; ++i) mem_a.write_word(src.word_addr + i, i);

  SendDma send(&link.engine, &mem_a, link.send_a.get(), DmaTiming{});
  RecvDma recv(&link.engine, &mem_b, link.recv_b.get(), DmaTiming{});
  // Gather every other group of 4 words; scatter contiguously.
  DmaDescriptor sd{src.word_addr, 4, 8, 8};
  DmaDescriptor rd{dst.word_addr, 32, 1, 0};
  recv.start(rd);
  send.start(sd);
  link.engine.run_until_idle();
  for (u64 blk = 0; blk < 8; ++blk) {
    for (u64 w = 0; w < 4; ++w) {
      EXPECT_EQ(mem_b.read_word(dst.word_addr + blk * 4 + w), blk * 8 + w);
    }
  }
}

TEST(GlobalOps, OddRingSizes) {
  GlobalOpTiming t;
  for (int n : {3, 5, 7}) {
    std::vector<double> values(static_cast<std::size_t>(n), 2.0);
    const auto single = ring_allreduce(t, values, false);
    const auto doubled = ring_allreduce(t, values, true);
    EXPECT_DOUBLE_EQ(single.sum, 2.0 * n);
    EXPECT_DOUBLE_EQ(doubled.sum, 2.0 * n);
    EXPECT_EQ(single.max_hops, static_cast<u64>(n - 1));
    EXPECT_EQ(doubled.max_hops, static_cast<u64>((n - 1 + 1) / 2));
  }
}

// --- Fault injection and escalation -----------------------------------------

TEST(Link, AckLossBurstIsRecoveredByTimeout) {
  LinkParams params;
  params.resend_timeout_cycles = 512;
  LinkPair link(0.0, params);
  std::vector<u64> got;
  link.recv_b->set_data_sink([&](u64 w) { got.push_back(w); });
  link.send_a->drop_acks(4);
  for (u64 i = 0; i < 30; ++i) link.send_a->enqueue_data(3000 + i);
  link.engine.run_until_idle();
  ASSERT_EQ(got.size(), 30u);
  for (u64 i = 0; i < 30; ++i) EXPECT_EQ(got[i], 3000 + i);
  EXPECT_TRUE(link.send_a->data_drained());
  EXPECT_EQ(link.send_a->checksum(), link.recv_b->checksum());
  // The dropped acknowledgements forced the timeout machinery to resend.
  EXPECT_GT(link.send_a->resends(), 0u);
  EXPECT_GT(link.stats.get("scu.acks_dropped"), 0u);
  EXPECT_FALSE(link.send_a->faulted());
}

TEST(Link, HighErrorRateGoBackNKeepsChecksumsMatched) {
  LinkParams params;
  params.resend_timeout_cycles = 512;
  LinkPair link(1e-3, params);
  std::vector<u64> got;
  link.recv_b->set_data_sink([&](u64 w) { got.push_back(w); });
  Rng payloads(11);
  std::vector<u64> sent;
  for (int i = 0; i < 600; ++i) {
    sent.push_back(payloads.next_u64());
    link.send_a->enqueue_data(sent.back());
  }
  link.engine.run_until_idle();
  ASSERT_EQ(got.size(), sent.size());
  // At this rate parity failures and NACK go-backs are guaranteed.
  EXPECT_GT(link.recv_b->detected_errors(), 0u);
  EXPECT_GT(link.send_a->resends(), 0u);
  if (link.recv_b->undetected_errors() == 0) {
    EXPECT_EQ(got, sent);
    EXPECT_EQ(link.send_a->checksum(), link.recv_b->checksum());
  } else {
    EXPECT_NE(link.send_a->checksum(), link.recv_b->checksum());
  }
}

TEST(Link, ErrorRecoveryIsSeedDeterministic) {
  // The whole failure path -- error injection, NACKs, timeouts, resends --
  // must be bit-reproducible for a fixed seed (paper Section 4).
  auto run = [] {
    LinkParams params;
    params.resend_timeout_cycles = 512;
    LinkPair link(1e-3, params);
    link.recv_b->set_data_sink([](u64) {});
    Rng payloads(13);
    for (int i = 0; i < 400; ++i) link.send_a->enqueue_data(payloads.next_u64());
    link.engine.run_until_idle();
    return std::make_tuple(link.send_a->resends(),
                           link.recv_b->detected_errors(),
                           link.recv_b->checksum(), link.engine.now());
  };
  EXPECT_EQ(run(), run());
}

TEST(Link, DeadWireEscalatesToLinkFaultInsteadOfRetryingForever) {
  LinkParams params;
  params.resend_timeout_cycles = 256;
  params.fault_timeout_rounds = 4;
  LinkPair link(0.0, params);
  std::vector<u64> got;
  link.recv_b->set_data_sink([&](u64 w) { got.push_back(w); });
  int faults = 0;
  link.send_a->set_on_link_fault([&] { ++faults; });
  for (u64 i = 0; i < 10; ++i) link.send_a->enqueue_data(i);
  link.engine.run_until(400);  // a few words get through
  link.wire_ab->fail();
  link.engine.run_until_idle();  // must terminate: no infinite retry
  EXPECT_TRUE(link.send_a->faulted());
  EXPECT_EQ(faults, 1);
  EXPECT_FALSE(link.send_a->data_drained());
  EXPECT_GT(link.stats.get("scu.link_faults"), 0u);

  // Host-commanded recovery: retrain the wire, clear the fault, and the
  // window protocol re-delivers whatever the dead wire swallowed.
  link.wire_ab->retrain();
  link.send_a->clear_fault();
  link.engine.run_until_idle();
  EXPECT_FALSE(link.send_a->faulted());
  EXPECT_TRUE(link.send_a->data_drained());
  ASSERT_EQ(got.size(), 10u);
  for (u64 i = 0; i < 10; ++i) EXPECT_EQ(got[i], i);
  EXPECT_EQ(link.send_a->checksum(), link.recv_b->checksum());
}

TEST(Link, ForcedCorruptionLandsInChecksumOnly) {
  LinkPair link;
  std::vector<u64> got;
  link.recv_b->set_data_sink([&](u64 w) { got.push_back(w); });
  link.recv_b->force_corrupt(1);
  for (u64 i = 0; i < 10; ++i) link.send_a->enqueue_data(i);
  link.engine.run_until_idle();
  // The transfer "succeeds" -- only the end-to-end checksum can tell.
  ASSERT_EQ(got.size(), 10u);
  EXPECT_TRUE(link.send_a->data_drained());
  EXPECT_EQ(link.recv_b->undetected_errors(), 1u);
  EXPECT_NE(link.send_a->checksum(), link.recv_b->checksum());
}

// Window-size sweep as a property: bandwidth must be monotone in the
// window and saturate at 3 (the paper's design point).
class WindowSweep : public ::testing::TestWithParam<int> {};

TEST_P(WindowSweep, BandwidthMonotoneAndSaturating) {
  auto run = [](int window) {
    LinkParams params;
    params.ack_window = window;
    LinkPair link(0.0, params);
    link.recv_b->set_data_sink([](u64) {});
    for (int i = 0; i < 100; ++i) link.send_a->enqueue_data(static_cast<u64>(i));
    link.engine.run_until_idle();
    return static_cast<double>(link.engine.now());
  };
  const int w = GetParam();
  EXPECT_LE(run(w + 1), run(w));
  if (w >= 3) {
    // Already saturated: growing the window gains nothing.
    EXPECT_NEAR(run(w + 1), run(w), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace qcdoc::scu
