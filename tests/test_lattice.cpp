#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "lattice_fixture.h"

namespace qcdoc::lattice {
namespace {

using testing::LatticeRig;

// --- Local geometry ---------------------------------------------------------

TEST(LocalGeometry, IndexCoordRoundTrip) {
  const LocalGeometry g({4, 3, 2, 5});
  EXPECT_EQ(g.volume(), 120);
  for (int i = 0; i < g.volume(); ++i) {
    EXPECT_EQ(g.index(g.coords(i)), i);
  }
}

TEST(LocalGeometry, InteriorNeighbors) {
  const LocalGeometry g({4, 4, 4, 4});
  const int s = g.index({1, 2, 1, 2});
  const auto n = g.neighbor(s, 0, +1);
  EXPECT_TRUE(n.local);
  EXPECT_EQ(n.index, g.index({2, 2, 1, 2}));
  const auto m = g.neighbor(s, 3, -1);
  EXPECT_TRUE(m.local);
  EXPECT_EQ(m.index, g.index({1, 2, 1, 1}));
}

TEST(LocalGeometry, BoundaryNeighborsIndexHaloByLayerAndTransverse) {
  const LocalGeometry g({4, 4, 4, 4});
  const int s = g.index({3, 1, 2, 0});
  const auto n = g.neighbor(s, 0, +1);
  EXPECT_FALSE(n.local);
  // layer 0, transverse = lexicographic over (y,z,t).
  EXPECT_EQ(n.index, 0 * 64 + (1 + 4 * (2 + 4 * 0)));
  const auto b = g.neighbor(s, 3, -1);
  EXPECT_FALSE(b.local);
  EXPECT_EQ(b.index, 3 + 4 * (1 + 4 * 2));
}

TEST(LocalGeometry, Distance3NeighborsForNaik) {
  const LocalGeometry g({4, 4, 4, 4});
  const int s = g.index({2, 0, 0, 0});
  const auto n = g.neighbor(s, 0, +1, 3);
  EXPECT_FALSE(n.local);
  EXPECT_EQ(n.index / g.face_volume(0), 1);  // layer 1: 2+3-4
  const auto m = g.neighbor(s, 0, -1, 3);
  EXPECT_FALSE(m.local);
  EXPECT_EQ(m.index / g.face_volume(0), 0);  // reaches x = -1 -> layer 0
}

TEST(LocalGeometry, FaceLayerSitesMatchNeighborIndexing) {
  // The packing order must align with the halo indexing: if node A packs
  // its face sites with face_layer_sites(mu, +1, l), then B's site whose
  // (mu,+1,dist) neighbour is off-node at halo position p must correspond
  // to A's packed entry p.
  const LocalGeometry g({4, 4, 2, 2});
  for (int mu = 0; mu < 4; ++mu) {
    const auto packed = g.face_layer_sites(mu, +1, 0);
    for (int s = 0; s < g.volume(); ++s) {
      const auto n = g.neighbor(s, mu, +1);
      if (n.local) continue;
      Coord4 x = g.coords(s);
      x[static_cast<std::size_t>(mu)] = 0;
      EXPECT_EQ(packed[static_cast<std::size_t>(n.index)], g.index(x));
    }
  }
}

// --- Global geometry --------------------------------------------------------

TEST(GlobalGeometry, CoordinatesTileThePartition) {
  LatticeRig rig({2, 2, 2, 2, 1, 1}, {4, 4, 4, 4});
  const auto& geom = *rig.geom;
  EXPECT_EQ(geom.local().volume(), 16);  // 2^4 local
  std::set<int> global_ids;
  const auto& ge = geom.global_extent();
  for (int r = 0; r < geom.ranks(); ++r) {
    for (int s = 0; s < geom.local().volume(); ++s) {
      const Coord4 g = geom.global_coords(r, s);
      const int gid = ((g[3] * ge[2] + g[2]) * ge[1] + g[1]) * ge[0] + g[0];
      EXPECT_TRUE(global_ids.insert(gid).second) << "duplicate site";
      const auto [owner_rank, owner_idx] = geom.owner(g);
      EXPECT_EQ(owner_rank, r);
      EXPECT_EQ(owner_idx, s);
    }
  }
  EXPECT_EQ(static_cast<int>(global_ids.size()), 256);
}

TEST(GlobalGeometry, ParityAndStaggeredPhases) {
  LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 2, 2, 2});
  const auto& geom = *rig.geom;
  for (int r = 0; r < geom.ranks(); ++r) {
    for (int s = 0; s < geom.local().volume(); ++s) {
      EXPECT_DOUBLE_EQ(geom.staggered_phase(r, s, 0), 1.0);
      const Coord4 g = geom.global_coords(r, s);
      EXPECT_DOUBLE_EQ(geom.staggered_phase(r, s, 1),
                       (g[0] % 2) ? -1.0 : 1.0);
      EXPECT_EQ(geom.parity(r, s), (g[0] + g[1] + g[2] + g[3]) % 2);
    }
  }
}

// --- DistField + halo exchange ----------------------------------------------

TEST(HaloSet, HaloExchangeDeliversNeighborFaces) {
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 2, 2});
  DistField f(rig.comm.get(), rig.geom.get(), /*site=*/2, "f");
  HaloSet halos(rig.comm.get(), rig.geom.get(), /*halo=*/2, 1, 1, "f.halo");
  const auto& local = rig.geom->local();
  for (int r = 0; r < f.ranks(); ++r) {
    for (int s = 0; s < local.volume(); ++s) {
      const Coord4 g = rig.geom->global_coords(r, s);
      f.site(r, s)[0] = g[0] + 10.0 * g[1] + 100.0 * g[2] + 1000.0 * g[3];
      f.site(r, s)[1] = -f.site(r, s)[0];
    }
  }
  for (int r = 0; r < f.ranks(); ++r) {
    for (int mu = 0; mu < 2; ++mu) {  // distributed dims only
      for (int d : {+1, -1}) {
        const auto sites = local.face_layer_sites(mu, d, 0);
        auto buf = halos.send_buf(r, mu, d);
        for (std::size_t t = 0; t < sites.size(); ++t) {
          buf[2 * t] = f.site(r, sites[t])[0];
          buf[2 * t + 1] = f.site(r, sites[t])[1];
        }
      }
    }
  }
  halos.post_shift(0);
  halos.post_shift(1);
  ASSERT_TRUE(rig.m->mesh().drain());
  const auto& ge = rig.geom->global_extent();
  for (int r = 0; r < f.ranks(); ++r) {
    for (int s = 0; s < local.volume(); ++s) {
      for (int mu = 0; mu < 2; ++mu) {
        for (int d : {+1, -1}) {
          const auto n = local.neighbor(s, mu, d);
          if (n.local) continue;
          Coord4 g = rig.geom->global_coords(r, s);
          g[static_cast<std::size_t>(mu)] =
              (g[static_cast<std::size_t>(mu)] + d +
               ge[static_cast<std::size_t>(mu)]) %
              ge[static_cast<std::size_t>(mu)];
          const double expect =
              g[0] + 10.0 * g[1] + 100.0 * g[2] + 1000.0 * g[3];
          EXPECT_DOUBLE_EQ(
              halos.recv_buf(r, mu, d)[2 * static_cast<std::size_t>(n.index)],
              expect)
              << "rank " << r << " site " << s << " mu " << mu << " d " << d;
        }
      }
    }
  }
  EXPECT_TRUE(rig.m->mesh().verify_link_checksums());
}

TEST(HaloSet, NonDistributedDimUsesLocalCopy) {
  LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 4, 2, 2});
  HaloSet halos(rig.comm.get(), rig.geom.get(), 1, 1, 1, "f.halo");
  for (int r = 0; r < rig.geom->ranks(); ++r) {
    auto buf = halos.send_buf(r, 2, +1);
    for (std::size_t t = 0; t < buf.size(); ++t) buf[t] = 500.0 + t;
    auto buf2 = halos.send_buf(r, 2, -1);
    for (std::size_t t = 0; t < buf2.size(); ++t) buf2[t] = 700.0 + t;
  }
  halos.post_shift(2);
  ASSERT_TRUE(rig.m->mesh().drain());
  for (int r = 0; r < rig.geom->ranks(); ++r) {
    EXPECT_DOUBLE_EQ(halos.recv_buf(r, 2, +1)[0], 500.0);
    EXPECT_DOUBLE_EQ(halos.recv_buf(r, 2, -1)[0], 700.0);
  }
}

TEST(DistField, BodySpillsToDdrWhenEdramFull) {
  LatticeRig rig({2, 1, 1, 1, 1, 1}, {8, 8, 8, 8});  // 2048 sites per node
  DistField a(rig.comm.get(), rig.geom.get(), 192, "a");
  DistField b(rig.comm.get(), rig.geom.get(), 192, "b");
  EXPECT_EQ(a.body_region(), memsys::Region::kEdram);
  EXPECT_EQ(b.body_region(), memsys::Region::kDdr);
}

// --- Gauge field ------------------------------------------------------------

TEST(GaugeField, UnitConfigurationHasPlaquetteOne) {
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 2, 2});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  gauge.set_unit();
  EXPECT_NEAR(gauge.average_plaquette(), 1.0, 1e-14);
  EXPECT_LT(gauge.max_unitarity_violation(), 1e-12);
}

TEST(GaugeField, HotConfigurationHasSmallPlaquette) {
  LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 2, 2, 2});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(77);
  gauge.randomize(rng);
  EXPECT_LT(std::abs(gauge.average_plaquette()), 0.2);
  EXPECT_LT(gauge.max_unitarity_violation(), 1e-11);
}

TEST(GaugeField, WeakFieldPlaquetteNearOne) {
  LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 2, 2, 2});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(78);
  gauge.randomize_near_unit(rng, 0.01);
  EXPECT_GT(gauge.average_plaquette(), 0.99);
}

TEST(GaugeField, HeatbathIsDeterministicAndOrdersAtStrongCoupling) {
  LatticeRig rig1({2, 1, 1, 1, 1, 1}, {4, 2, 2, 2});
  LatticeRig rig2({2, 1, 1, 1, 1, 1}, {4, 2, 2, 2});
  GaugeField g1(rig1.comm.get(), rig1.geom.get());
  GaugeField g2(rig2.comm.get(), rig2.geom.get());
  Rng r1(5), r2(5);
  g1.randomize(r1);
  g2.randomize(r2);
  for (int sweep = 0; sweep < 3; ++sweep) {
    g1.heatbath_sweep(8.0, r1);
    g2.heatbath_sweep(8.0, r2);
  }
  // Bit-identical evolution from identical seeds (paper Section 4).
  EXPECT_EQ(g1.average_plaquette(), g2.average_plaquette());
  // At beta = 8 the heatbath drives the plaquette well above disorder.
  EXPECT_GT(g1.average_plaquette(), 0.4);
  EXPECT_LT(g1.max_unitarity_violation(), 1e-11);
}

TEST(GaugeField, HeatbathAtZeroCouplingStaysDisordered) {
  LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 2, 2, 2});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(6);
  gauge.randomize(rng);
  gauge.heatbath_sweep(1e-9, rng);
  EXPECT_LT(std::abs(gauge.average_plaquette()), 0.25);
}

// --- FieldOps ---------------------------------------------------------------

TEST(FieldOps, AxpyNorm2Dot) {
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 2, 2});
  DistField x(rig.comm.get(), rig.geom.get(), 4, "x");
  DistField y(rig.comm.get(), rig.geom.get(), 4, "y");
  for (int r = 0; r < x.ranks(); ++r) {
    auto xs = x.data(r);
    auto ys = y.data(r);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      xs[i] = 1.0;
      ys[i] = 2.0;
    }
  }
  const double n = 4.0 * rig.geom->local().volume() * rig.geom->ranks();
  EXPECT_DOUBLE_EQ(rig.ops->norm2(x), n);
  EXPECT_DOUBLE_EQ(rig.ops->dot_re(x, y), 2.0 * n);
  rig.ops->axpy(3.0, x, y);  // y = 2 + 3 = 5
  EXPECT_DOUBLE_EQ(rig.ops->norm2(y), 25.0 * n);
  rig.ops->xpay(x, -0.2, y);  // y = 1 - 1 = 0
  EXPECT_NEAR(rig.ops->norm2(y), 0.0, 1e-20);
  EXPECT_GT(rig.ops->flops(), 0.0);
}

TEST(FieldOps, OperationsAdvanceMachineTime) {
  LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 4, 4, 4});
  DistField x(rig.comm.get(), rig.geom.get(), 24, "x");
  const Cycle t0 = rig.bsp->now();
  rig.ops->norm2(x);
  const Cycle t1 = rig.bsp->now();
  EXPECT_GT(t1, t0);
  EXPECT_GT(rig.bsp->global_cycles(), 0.0);
}

}  // namespace
}  // namespace qcdoc::lattice

namespace qcdoc::lattice {
namespace {

TEST(GaugeField, HeatbathReproducesKnownPlaquetteAtBeta5p7) {
  // The SU(3) plaquette at beta = 5.7 is a classic reference point:
  // <P> ~ 0.549 in the thermodynamic limit.  A 4^4 lattice after a few
  // dozen sweeps lands in a loose band around it -- a real physics check
  // of the whole heatbath chain.
  testing::LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 4, 4, 2});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(57);
  gauge.randomize(rng);  // hot start
  for (int sweep = 0; sweep < 40; ++sweep) gauge.heatbath_sweep(5.7, rng);
  const double plaq = gauge.average_plaquette();
  EXPECT_GT(plaq, 0.50);
  EXPECT_LT(plaq, 0.60);
  EXPECT_LT(gauge.max_unitarity_violation(), 1e-10);
}

TEST(GaugeField, PlaquetteTracksCoupling) {
  // <P> must increase monotonically in beta (averaged over sweeps).
  testing::LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 2, 2, 2});
  double last = -1.0;
  for (double beta : {1.0, 3.0, 6.0, 12.0}) {
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    Rng rng(91);
    gauge.randomize(rng);
    for (int sweep = 0; sweep < 15; ++sweep) gauge.heatbath_sweep(beta, rng);
    const double plaq = gauge.average_plaquette();
    EXPECT_GT(plaq, last) << "beta = " << beta;
    last = plaq;
  }
}

}  // namespace
}  // namespace qcdoc::lattice

namespace qcdoc::lattice {
namespace {

TEST(GaugeField, HeatbathIsDistributionInvariant) {
  // The evolution iterates global sites in a fixed order with one RNG
  // stream, so the configuration must not depend on how the lattice is
  // spread over nodes -- bit for bit.
  auto evolve = [](std::array<int, 6> machine) {
    testing::LatticeRig rig(machine, {4, 4, 2, 2});
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    Rng rng(321);
    gauge.randomize(rng);
    gauge.heatbath_sweep(5.7, rng);
    return gauge.average_plaquette();
  };
  const double p1 = evolve({1, 1, 1, 1, 1, 1});
  const double p4 = evolve({2, 2, 1, 1, 1, 1});
  const double p16 = evolve({2, 2, 2, 2, 1, 1});
  EXPECT_EQ(p1, p4);
  EXPECT_EQ(p1, p16);
}

}  // namespace
}  // namespace qcdoc::lattice

#include "lattice/observables.h"

namespace qcdoc::lattice {
namespace {

TEST(Observables, FreeFieldLoopsAreUnity) {
  testing::LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 4, 4, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  gauge.set_unit();
  EXPECT_NEAR(wilson_loop(gauge, 1, 1), 1.0, 1e-13);
  EXPECT_NEAR(wilson_loop(gauge, 2, 3), 1.0, 1e-13);
  const Complex poly = polyakov_loop(gauge);
  EXPECT_NEAR(poly.real(), 1.0, 1e-13);
  EXPECT_NEAR(poly.imag(), 0.0, 1e-13);
}

TEST(Observables, OneByOneWilsonLoopIsThePlaquette) {
  testing::LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 4, 2, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(81);
  gauge.randomize_near_unit(rng, 0.2);
  // W(1,1) averages only the 3 spatial-temporal planes; compare against a
  // plaquette restricted the same way by checking it's in the same ballpark
  // and exactly gauge invariant below.
  const double w11 = wilson_loop(gauge, 1, 1);
  EXPECT_GT(w11, 0.5);
  EXPECT_LT(w11, 1.0);
}

TEST(Observables, GaugeInvariance) {
  // The sharpest correctness check available: transform every link with a
  // random g(x) and demand all observables unchanged to rounding.
  testing::LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 4, 2, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(82);
  gauge.randomize_near_unit(rng, 0.4);
  const double plaq = gauge.average_plaquette();
  const double w21 = wilson_loop(gauge, 2, 1);
  const double w22 = wilson_loop(gauge, 2, 2);
  const Complex poly = polyakov_loop(gauge);

  random_gauge_transform(&gauge, rng);
  EXPECT_LT(gauge.max_unitarity_violation(), 1e-11);
  EXPECT_NEAR(gauge.average_plaquette(), plaq, 1e-11);
  EXPECT_NEAR(wilson_loop(gauge, 2, 1), w21, 1e-11);
  EXPECT_NEAR(wilson_loop(gauge, 2, 2), w22, 1e-11);
  const Complex poly2 = polyakov_loop(gauge);
  EXPECT_NEAR(std::abs(poly2 - poly), 0.0, 1e-11);
}

TEST(Observables, WilsonLoopsDecayWithArea) {
  // Confinement signal: bigger loops are smaller on a disordered field.
  testing::LatticeRig rig({2, 1, 1, 1, 1, 1}, {6, 6, 4, 6});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(83);
  gauge.randomize(rng);
  for (int sweep = 0; sweep < 10; ++sweep) gauge.heatbath_sweep(5.7, rng);
  const double w11 = wilson_loop(gauge, 1, 1);
  const double w22 = wilson_loop(gauge, 2, 2);
  EXPECT_GT(w11, std::abs(w22));
  EXPECT_GT(w11, 0.0);
}

TEST(Observables, OverrelaxationPreservesThePlaquetteExactly) {
  // Microcanonical: the action is invariant, but the configuration moves.
  testing::LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 4, 2, 2});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(84);
  gauge.randomize(rng);
  for (int sweep = 0; sweep < 5; ++sweep) gauge.heatbath_sweep(3.0, rng);
  const double before = gauge.average_plaquette();
  const Su3Matrix link_before = gauge.link(0, 0, 0);
  overrelax_sweep(&gauge);
  const double after = gauge.average_plaquette();
  EXPECT_NEAR(after, before, 5e-4);  // per-link exact; sweep-level drift from
                                     // sequential staple updates is tiny
  double moved = 0;
  const Su3Matrix link_after = gauge.link(0, 0, 0);
  for (std::size_t k = 0; k < 9; ++k) {
    moved += std::abs(link_after.m[k] - link_before.m[k]);
  }
  EXPECT_GT(moved, 1e-3);  // the configuration really changed
  EXPECT_LT(gauge.max_unitarity_violation(), 1e-11);
}

TEST(Observables, MixedHeatbathOverrelaxationEquilibrates) {
  // A production-style update (1 heatbath + 2 overrelaxation per compound
  // sweep) must reach the same plaquette as pure heatbath.
  testing::LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 4, 2, 4});
  GaugeField hb(rig.comm.get(), rig.geom.get());
  GaugeField mixed(rig.comm.get(), rig.geom.get());
  Rng r1(85), r2(85);
  hb.randomize(r1);
  mixed.randomize(r2);
  for (int sweep = 0; sweep < 24; ++sweep) hb.heatbath_sweep(5.7, r1);
  for (int compound = 0; compound < 8; ++compound) {
    mixed.heatbath_sweep(5.7, r2);
    overrelax_sweep(&mixed);
    overrelax_sweep(&mixed);
  }
  EXPECT_NEAR(hb.average_plaquette(), mixed.average_plaquette(), 0.06);
}

}  // namespace
}  // namespace qcdoc::lattice
