#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "lattice/clover.h"
#include "lattice/dwf.h"
#include "lattice/staggered.h"
#include "lattice/wilson.h"
#include "lattice_fixture.h"

namespace qcdoc::lattice {
namespace {

using testing::LatticeRig;
using testing::fill_by_global_site;
using testing::fill_gauge_by_global_site;
using testing::gather_global;

/// Complex inner product <a, b> over gathered global arrays (consecutive
/// (re, im) pairs).
Complex global_cdot(const std::vector<double>& a, const std::vector<double>& b) {
  Complex sum = 0;
  for (std::size_t i = 0; i + 1 < a.size(); i += 2) {
    sum += std::conj(Complex(a[i], a[i + 1])) * Complex(b[i], b[i + 1]);
  }
  return sum;
}

double global_max_diff(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double worst = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

// --- Wilson -----------------------------------------------------------------

TEST(Wilson, FreeFieldConstantSpinorGivesEightPsi) {
  // Unit gauge, constant psi: Dslash psi = sum_mu [(1-g)+(1+g)] psi = 8 psi.
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  gauge.set_unit();
  WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge, WilsonParams{});
  DistField in = op.make_field("in");
  DistField out = op.make_field("out");
  for (int r = 0; r < in.ranks(); ++r) {
    for (int s = 0; s < rig.geom->local().volume(); ++s) {
      double* p = in.site(r, s);
      for (int k = 0; k < 24; ++k) p[k] = 0.5 + 0.25 * k;
    }
  }
  op.dslash(out, in);
  for (int r = 0; r < out.ranks(); ++r) {
    for (int s = 0; s < rig.geom->local().volume(); ++s) {
      const double* pi = in.site(r, s);
      const double* po = out.site(r, s);
      for (int k = 0; k < 24; ++k) {
        ASSERT_NEAR(po[k], 8.0 * pi[k], 1e-11);
      }
    }
  }
}

TEST(Wilson, MultiNodeMatchesSingleNode) {
  // The decisive halo test: the same global problem on 1 node and on 16
  // nodes must produce identical results.
  const Coord4 global{4, 4, 4, 4};
  LatticeRig one({1, 1, 1, 1, 1, 1}, global);
  LatticeRig many({2, 2, 2, 2, 1, 1}, global);

  auto run = [&](LatticeRig& rig) {
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    fill_gauge_by_global_site(*rig.geom, gauge, 0xbeef);
    WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                   WilsonParams{.kappa = 0.124});
    DistField in = op.make_field("in");
    DistField out = op.make_field("out");
    fill_by_global_site(*rig.geom, in);
    op.apply(out, in);
    return gather_global(*rig.geom, out);
  };
  const auto a = run(one);
  const auto b = run(many);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_LT(global_max_diff(a, b), 1e-12);
}

TEST(Wilson, Gamma5Hermiticity) {
  // <phi, M psi> == <M^dagger phi, psi> with M^dagger = g5 M g5.
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 2, 2});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(3);
  gauge.randomize(rng);
  WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                 WilsonParams{.kappa = 0.21});
  DistField psi = op.make_field("psi");
  DistField phi = op.make_field("phi");
  DistField mpsi = op.make_field("mpsi");
  DistField mdphi = op.make_field("mdphi");
  fill_by_global_site(*rig.geom, psi);
  // A different deterministic fill for phi.
  for (int r = 0; r < phi.ranks(); ++r) {
    for (int s = 0; s < rig.geom->local().volume(); ++s) {
      const Coord4 g = rig.geom->global_coords(r, s);
      double* p = phi.site(r, s);
      for (int k = 0; k < 24; ++k) {
        p[k] = std::cos(0.3 * g[0] + 0.7 * g[1] - 0.2 * g[2] + g[3] + k);
      }
    }
  }
  op.apply(mpsi, psi);
  op.apply_dag(mdphi, phi);
  const Complex lhs = global_cdot(gather_global(*rig.geom, phi),
                                  gather_global(*rig.geom, mpsi));
  const Complex rhs = global_cdot(gather_global(*rig.geom, mdphi),
                                  gather_global(*rig.geom, psi));
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-9 * std::abs(lhs));
}

TEST(Wilson, SinglePrecisionCommTracksDouble) {
  const Coord4 global{4, 4, 4, 4};
  LatticeRig rig_d({2, 2, 1, 1, 1, 1}, global);
  LatticeRig rig_s({2, 2, 1, 1, 1, 1}, global);
  auto run = [&](LatticeRig& rig, bool single) {
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    fill_gauge_by_global_site(*rig.geom, gauge, 0xf00d);
    WilsonParams params;
    params.single_precision = single;
    WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge, params);
    DistField in = op.make_field("in");
    DistField out = op.make_field("out");
    fill_by_global_site(*rig.geom, in);
    op.dslash(out, in);
    return gather_global(*rig.geom, out);
  };
  const auto d = run(rig_d, false);
  const auto s = run(rig_s, true);
  // Face data went through floats: small but nonzero truncation.
  const double diff = global_max_diff(d, s);
  EXPECT_GT(diff, 0.0);
  EXPECT_LT(diff, 1e-5);
}

TEST(Wilson, ProfileMatchesCanonicalFlops) {
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  gauge.set_unit();
  WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge, WilsonParams{});
  const auto site = op.site_profile();
  const double v = rig.geom->local().volume();
  EXPECT_DOUBLE_EQ(site.flops(), 1320.0 * v);  // the canonical count
}

TEST(Wilson, OverlapModeProducesSameResultFaster) {
  const Coord4 global{8, 8, 4, 4};
  LatticeRig rig_a({2, 2, 1, 1, 1, 1}, global);
  LatticeRig rig_b({2, 2, 1, 1, 1, 1}, global);
  auto run = [&](LatticeRig& rig, bool overlap, Cycle* cycles) {
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    fill_gauge_by_global_site(*rig.geom, gauge, 0xaaaa);
    WilsonParams params;
    params.overlap_comm = overlap;
    WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge, params);
    DistField in = op.make_field("in");
    DistField out = op.make_field("out");
    fill_by_global_site(*rig.geom, in);
    const Cycle t0 = rig.bsp->now();
    op.dslash(out, in);
    *cycles = rig.bsp->now() - t0;
    return gather_global(*rig.geom, out);
  };
  Cycle seq = 0, ovl = 0;
  const auto a = run(rig_a, false, &seq);
  const auto b = run(rig_b, true, &ovl);
  EXPECT_LT(global_max_diff(a, b), 1e-12);
  EXPECT_LT(ovl, seq);
}

// --- Clover -----------------------------------------------------------------

TEST(Clover, UnitGaugeReducesToWilson) {
  // F = 0 for a free field, so A = 1 and M_clover = M_wilson.
  const Coord4 global{4, 4, 4, 4};
  LatticeRig rig_c({2, 2, 1, 1, 1, 1}, global);
  LatticeRig rig_w({2, 2, 1, 1, 1, 1}, global);
  GaugeField gauge_c(rig_c.comm.get(), rig_c.geom.get());
  GaugeField gauge_w(rig_w.comm.get(), rig_w.geom.get());
  gauge_c.set_unit();
  gauge_w.set_unit();
  CloverDirac clover(rig_c.ops.get(), rig_c.geom.get(), &gauge_c,
                     CloverParams{.kappa = 0.124, .csw = 1.3});
  WilsonDirac wilson(rig_w.ops.get(), rig_w.geom.get(), &gauge_w,
                     WilsonParams{.kappa = 0.124});
  DistField in_c = clover.make_field("in");
  DistField out_c = clover.make_field("out");
  DistField in_w = wilson.make_field("in");
  DistField out_w = wilson.make_field("out");
  fill_by_global_site(*rig_c.geom, in_c);
  fill_by_global_site(*rig_w.geom, in_w);
  clover.apply(out_c, in_c);
  wilson.apply(out_w, in_w);
  EXPECT_LT(global_max_diff(gather_global(*rig_c.geom, out_c),
                            gather_global(*rig_w.geom, out_w)),
            1e-11);
}

TEST(Clover, CloverTermIsHermitian) {
  LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 4, 2, 2});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(8);
  gauge.randomize_near_unit(rng, 0.2);
  CloverDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                 CloverParams{.kappa = 0.1, .csw = 1.0});
  DistField psi = op.make_field("psi");
  DistField phi = op.make_field("phi");
  DistField apsi = op.make_field("apsi");
  DistField aphi = op.make_field("aphi");
  fill_by_global_site(*rig.geom, psi);
  for (int r = 0; r < phi.ranks(); ++r) {
    for (int s = 0; s < rig.geom->local().volume(); ++s) {
      double* p = phi.site(r, s);
      for (int k = 0; k < 24; ++k) p[k] = std::sin(1.0 + 0.37 * s + k);
    }
  }
  op.apply_clover_term(apsi, psi);
  op.apply_clover_term(aphi, phi);
  const Complex lhs = global_cdot(gather_global(*rig.geom, phi),
                                  gather_global(*rig.geom, apsi));
  const Complex rhs = global_cdot(gather_global(*rig.geom, aphi),
                                  gather_global(*rig.geom, psi));
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-10 * (1.0 + std::abs(lhs)));
}

TEST(Clover, MultiNodeMatchesSingleNode) {
  const Coord4 global{4, 4, 4, 4};
  LatticeRig one({1, 1, 1, 1, 1, 1}, global);
  LatticeRig many({2, 2, 2, 2, 1, 1}, global);
  auto run = [&](LatticeRig& rig) {
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    fill_gauge_by_global_site(*rig.geom, gauge, 0xc1c1);
    CloverDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                   CloverParams{.kappa = 0.124, .csw = 1.0});
    DistField in = op.make_field("in");
    DistField out = op.make_field("out");
    fill_by_global_site(*rig.geom, in);
    op.apply(out, in);
    return gather_global(*rig.geom, out);
  };
  EXPECT_LT(global_max_diff(run(one), run(many)), 1e-11);
}

TEST(Clover, Gamma5Hermiticity) {
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 2, 2});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(9);
  gauge.randomize(rng);
  CloverDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                 CloverParams{.kappa = 0.15, .csw = 1.7});
  DistField psi = op.make_field("psi");
  DistField phi = op.make_field("phi");
  DistField mpsi = op.make_field("mpsi");
  DistField mdphi = op.make_field("mdphi");
  fill_by_global_site(*rig.geom, psi);
  for (int r = 0; r < phi.ranks(); ++r) {
    for (int s = 0; s < rig.geom->local().volume(); ++s) {
      double* p = phi.site(r, s);
      for (int k = 0; k < 24; ++k) p[k] = std::cos(0.11 * s * k + k);
    }
  }
  op.apply(mpsi, psi);
  op.apply_dag(mdphi, phi);
  const Complex lhs = global_cdot(gather_global(*rig.geom, phi),
                                  gather_global(*rig.geom, mpsi));
  const Complex rhs = global_cdot(gather_global(*rig.geom, mdphi),
                                  gather_global(*rig.geom, psi));
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-9 * (1.0 + std::abs(lhs)));
}

// --- ASQTAD staggered -------------------------------------------------------

TEST(Asqtad, UnitGaugeSmearedLinksAreNormalized) {
  // c1 + 6*c3 = 5/8 + 6/16 = 1: a free field keeps V = 1, W = naik * 1.
  LatticeRig rig({2, 1, 1, 1, 1, 1}, {8, 4, 4, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  gauge.set_unit();
  AsqtadDirac op(rig.ops.get(), rig.geom.get(), &gauge, AsqtadParams{});
  const Su3Matrix v = op.fat_link(0, 0, 1);
  const Su3Matrix one = Su3Matrix::identity();
  for (std::size_t k = 0; k < 9; ++k) {
    EXPECT_NEAR(std::abs(v.m[k] - one.m[k]), 0.0, 1e-13);
  }
  const Su3Matrix w = op.long_link(0, 0, 2);
  EXPECT_NEAR(std::abs(w.at(0, 0) - Complex(-1.0 / 24.0)), 0.0, 1e-13);
}

TEST(Asqtad, FreeFieldConstantVectorIsAnnihilated) {
  // D is a lattice derivative: it kills constant fields.
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {8, 8, 4, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  gauge.set_unit();
  AsqtadDirac op(rig.ops.get(), rig.geom.get(), &gauge, AsqtadParams{});
  DistField in = op.make_field("in");
  DistField out = op.make_field("out");
  for (int r = 0; r < in.ranks(); ++r) {
    for (int s = 0; s < rig.geom->local().volume(); ++s) {
      double* p = in.site(r, s);
      for (int k = 0; k < 6; ++k) p[k] = 1.0 + 0.1 * k;
    }
  }
  op.dslash(out, in);
  for (int r = 0; r < out.ranks(); ++r) {
    for (int s = 0; s < rig.geom->local().volume(); ++s) {
      const double* p = out.site(r, s);
      for (int k = 0; k < 6; ++k) ASSERT_NEAR(p[k], 0.0, 1e-12);
    }
  }
}

TEST(Asqtad, MultiNodeMatchesSingleNode) {
  const Coord4 global{6, 6, 6, 6};
  LatticeRig one({1, 1, 1, 1, 1, 1}, global);
  LatticeRig many({2, 2, 2, 2, 1, 1}, global);
  auto run = [&](LatticeRig& rig) {
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    fill_gauge_by_global_site(*rig.geom, gauge, 0x57a6);
    AsqtadDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                   AsqtadParams{.mass = 0.07});
    DistField in = op.make_field("in");
    DistField out = op.make_field("out");
    fill_by_global_site(*rig.geom, in);
    op.apply(out, in);
    return gather_global(*rig.geom, out);
  };
  EXPECT_LT(global_max_diff(run(one), run(many)), 1e-11);
}

TEST(Asqtad, HoppingTermIsAntiHermitian) {
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {8, 8, 4, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(10);
  gauge.randomize(rng);
  AsqtadDirac op(rig.ops.get(), rig.geom.get(), &gauge, AsqtadParams{});
  DistField psi = op.make_field("psi");
  DistField phi = op.make_field("phi");
  DistField dpsi = op.make_field("dpsi");
  DistField dphi = op.make_field("dphi");
  fill_by_global_site(*rig.geom, psi);
  for (int r = 0; r < phi.ranks(); ++r) {
    for (int s = 0; s < rig.geom->local().volume(); ++s) {
      double* p = phi.site(r, s);
      for (int k = 0; k < 6; ++k) p[k] = std::sin(0.7 * s + 1.3 * k);
    }
  }
  op.dslash(dpsi, psi);
  op.dslash(dphi, phi);
  const Complex lhs = global_cdot(gather_global(*rig.geom, phi),
                                  gather_global(*rig.geom, dpsi));
  const Complex rhs = global_cdot(gather_global(*rig.geom, dphi),
                                  gather_global(*rig.geom, psi));
  // <phi, D psi> = -conj(<psi, D phi>) = -<D phi, psi>
  EXPECT_NEAR(std::abs(lhs + rhs), 0.0, 1e-9 * (1.0 + std::abs(lhs)));
}

// --- Domain wall ------------------------------------------------------------

TEST(Dwf, MultiNodeMatchesSingleNode) {
  const Coord4 global{4, 4, 2, 2};
  LatticeRig one({1, 1, 1, 1, 1, 1}, global);
  LatticeRig many({2, 2, 1, 1, 1, 1}, global);
  auto run = [&](LatticeRig& rig) {
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    fill_gauge_by_global_site(*rig.geom, gauge, 0xd3f);
    DwfDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                DwfParams{.ls = 4, .kappa5 = 0.17, .mf = 0.05});
    DistField in = op.make_field("in");
    DistField out = op.make_field("out");
    fill_by_global_site(*rig.geom, in);
    op.apply(out, in);
    return gather_global(*rig.geom, out);
  };
  EXPECT_LT(global_max_diff(run(one), run(many)), 1e-11);
}

TEST(Dwf, DaggerIsTrueAdjoint) {
  LatticeRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 2, 2});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(11);
  gauge.randomize(rng);
  DwfDirac op(rig.ops.get(), rig.geom.get(), &gauge,
              DwfParams{.ls = 6, .kappa5 = 0.2, .mf = 0.1});
  DistField psi = op.make_field("psi");
  DistField phi = op.make_field("phi");
  DistField mpsi = op.make_field("mpsi");
  DistField mdphi = op.make_field("mdphi");
  fill_by_global_site(*rig.geom, psi);
  for (int r = 0; r < phi.ranks(); ++r) {
    for (int s = 0; s < rig.geom->local().volume(); ++s) {
      double* p = phi.site(r, s);
      for (int k = 0; k < phi.site_doubles(); ++k) {
        p[k] = std::cos(0.05 * s + 0.21 * k);
      }
    }
  }
  op.apply(mpsi, psi);
  op.apply_dag(mdphi, phi);
  const Complex lhs = global_cdot(gather_global(*rig.geom, phi),
                                  gather_global(*rig.geom, mpsi));
  const Complex rhs = global_cdot(gather_global(*rig.geom, mdphi),
                                  gather_global(*rig.geom, psi));
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-9 * (1.0 + std::abs(lhs)));
}

TEST(Dwf, GaugeReuseRaisesArithmeticIntensity) {
  LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 4, 2, 2});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  gauge.set_unit();
  DwfDirac dwf8(rig.ops.get(), rig.geom.get(), &gauge, DwfParams{.ls = 8});
  DwfDirac dwf16(rig.ops.get(), rig.geom.get(), &gauge, DwfParams{.ls = 16});
  const auto p8 = dwf8.site_profile();
  const auto p16 = dwf16.site_profile();
  const double intensity8 = p8.flops() / (p8.load_bytes + p8.store_bytes);
  const double intensity16 = p16.flops() / (p16.load_bytes + p16.store_bytes);
  EXPECT_GT(intensity16, intensity8);
}

}  // namespace
}  // namespace qcdoc::lattice

namespace qcdoc::lattice {
namespace {

// The ultimate partitioning test: QCD on a 6-D machine folded down to a
// 4-D logical torus (the paper's reason for building six dimensions) must
// reproduce the single-node answer exactly.
TEST(Wilson, FoldedSixDimensionalMachineMatchesSingleNode) {
  const Coord4 global{4, 4, 4, 8};

  // Reference: one node.
  LatticeRig one({1, 1, 1, 1, 1, 1}, global);
  GaugeField gauge1(one.comm.get(), one.geom.get());
  testing::fill_gauge_by_global_site(*one.geom, gauge1, 0xf01d);
  WilsonDirac op1(one.ops.get(), one.geom.get(), &gauge1,
                  WilsonParams{.kappa = 0.124});
  DistField in1 = op1.make_field("in");
  DistField out1 = op1.make_field("out");
  fill_by_global_site(*one.geom, in1);
  op1.apply(out1, in1);
  const auto ref = gather_global(*one.geom, out1);

  // A full 2^6 hypercube (the paper's motherboard!) folded to 2x2x2x8.
  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 2, 2, 2, 2, 2};
  machine::Machine m(cfg);
  m.power_on();
  const torus::Partition folded = torus::fold_to_4d(m.topology());
  ASSERT_TRUE(folded.is_true_torus());
  ASSERT_EQ(folded.logical_shape().extent[3], 8);
  comms::Communicator comm(&m, &folded);
  GlobalGeometry geom(&folded, global);
  machine::BspRunner bsp(&m);
  cpu::CpuModel cpu_model(m.hw(), m.mem_timing());
  FieldOps ops(&bsp, &cpu_model, &comm);
  GaugeField gauge2(&comm, &geom);
  testing::fill_gauge_by_global_site(geom, gauge2, 0xf01d);
  WilsonDirac op2(&ops, &geom, &gauge2, WilsonParams{.kappa = 0.124});
  DistField in2 = op2.make_field("in");
  DistField out2 = op2.make_field("out");
  fill_by_global_site(geom, in2);
  op2.apply(out2, in2);
  const auto folded_result = gather_global(geom, out2);

  ASSERT_EQ(ref.size(), folded_result.size());
  EXPECT_LT(global_max_diff(ref, folded_result), 1e-12);
  EXPECT_TRUE(m.mesh().verify_link_checksums());
}

// Machine-shape sweep: the same physics on every distribution.
struct ShapeCase {
  std::array<int, 6> machine;
  Coord4 global;
};

class DistributionSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(DistributionSweep, WilsonApplyIsDistributionInvariant) {
  const auto& c = GetParam();
  LatticeRig one({1, 1, 1, 1, 1, 1}, c.global);
  LatticeRig many(c.machine, c.global);
  auto run = [&](LatticeRig& rig) {
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    testing::fill_gauge_by_global_site(*rig.geom, gauge, 0xabc);
    WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                   WilsonParams{.kappa = 0.13});
    DistField in = op.make_field("in");
    DistField out = op.make_field("out");
    fill_by_global_site(*rig.geom, in);
    op.apply(out, in);
    return gather_global(*rig.geom, out);
  };
  EXPECT_LT(global_max_diff(run(one), run(many)), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DistributionSweep,
    ::testing::Values(ShapeCase{{2, 1, 1, 1, 1, 1}, {4, 4, 2, 2}},
                      ShapeCase{{4, 1, 1, 1, 1, 1}, {8, 4, 2, 2}},
                      ShapeCase{{2, 2, 1, 1, 1, 1}, {4, 4, 2, 2}},
                      ShapeCase{{1, 2, 2, 1, 1, 1}, {2, 4, 4, 2}},
                      ShapeCase{{2, 2, 2, 2, 1, 1}, {4, 4, 4, 4}},
                      ShapeCase{{4, 2, 1, 2, 1, 1}, {8, 4, 2, 4}}));

// Domain-wall Ls sweep: adjoint identity must hold for every fifth-
// dimension extent.
class LsSweep : public ::testing::TestWithParam<int> {};

TEST_P(LsSweep, DwfAdjointIdentity) {
  const int ls = GetParam();
  LatticeRig rig({2, 1, 1, 1, 1, 1}, {4, 2, 2, 2});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(60 + ls);
  gauge.randomize(rng);
  DwfDirac op(rig.ops.get(), rig.geom.get(), &gauge,
              DwfParams{.ls = ls, .kappa5 = 0.19, .mf = 0.07});
  DistField psi = op.make_field("psi");
  DistField phi = op.make_field("phi");
  DistField mpsi = op.make_field("mpsi");
  DistField mdphi = op.make_field("mdphi");
  fill_by_global_site(*rig.geom, psi);
  for (int r = 0; r < phi.ranks(); ++r) {
    for (int s = 0; s < rig.geom->local().volume(); ++s) {
      double* p = phi.site(r, s);
      for (int k = 0; k < phi.site_doubles(); ++k) {
        p[k] = std::sin(0.03 * s * k + 0.5 * k);
      }
    }
  }
  op.apply(mpsi, psi);
  op.apply_dag(mdphi, phi);
  const Complex lhs = global_cdot(gather_global(*rig.geom, phi),
                                  gather_global(*rig.geom, mpsi));
  const Complex rhs = global_cdot(gather_global(*rig.geom, mdphi),
                                  gather_global(*rig.geom, psi));
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-9 * (1.0 + std::abs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(LsValues, LsSweep, ::testing::Values(2, 4, 6, 8, 12));

}  // namespace
}  // namespace qcdoc::lattice
