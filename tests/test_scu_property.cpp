// Property tests for the SCU packet format (paper Section 2.2).
//
// The format's design claim is that "a single bit error will not cause a
// packet to be misinterpreted": type codes sit at pairwise Hamming distance
// >= 2 and two parity bits cover the payload halves.  These tests drive
// encode/decode with large randomized batches instead of hand-picked cases:
// every random packet must round-trip exactly, every single-bit flip must be
// detected (or land in the link-sequence field, which the ACK protocol
// catches), and no corruption of any weight may silently decode back to the
// original packet.
#include <gtest/gtest.h>

#include <array>
#include <bit>

#include "common/rng.h"
#include "scu/packet.h"

namespace qcdoc::scu {
namespace {

constexpr std::array<PacketType, 6> kAllTypes = {
    PacketType::kData, PacketType::kSupervisor, PacketType::kPartitionIrq,
    PacketType::kAck,  PacketType::kNack,       PacketType::kSupAck,
};

Packet random_packet(Rng& rng) {
  Packet p;
  p.type = kAllTypes[rng.next_below(kAllTypes.size())];
  p.payload = rng.next_u64();
  if (!has_word_payload(p.type)) p.payload &= 0xff;
  p.seq = static_cast<u8>(rng.next_below(4));
  return p;
}

bool same_packet(const Packet& a, const Packet& b) {
  return a.type == b.type && a.payload == b.payload && a.seq == b.seq;
}

int bits_flipped(const WireFrame& a, const WireFrame& b) {
  int n = 0;
  for (std::size_t i = 0; i < a.bytes.size(); ++i) {
    n += std::popcount(static_cast<unsigned>(a.bytes[i] ^ b.bytes[i]));
  }
  return n;
}

TEST(ScuPacketProperty, RandomPayloadsRoundTripExactly) {
  Rng rng(0x5c0de);
  for (int i = 0; i < 20000; ++i) {
    const Packet p = random_packet(rng);
    const WireFrame f = encode(p);
    EXPECT_EQ(f.bits, frame_bits(p.type));
    const auto d = decode(f);
    ASSERT_TRUE(d.has_value()) << "iteration " << i;
    EXPECT_TRUE(same_packet(p, *d)) << "iteration " << i;
  }
}

// Exhaustive over bit positions, randomized over packet contents: a single
// flipped wire bit is either rejected by decode (type-code distance or
// parity) or changes only the 2-bit link sequence number -- which the
// link-level ACK/NACK protocol rejects as out of sequence.  It must never
// alter the type or payload of an accepted packet.
TEST(ScuPacketProperty, SingleBitFlipNeverMisinterpretsTypeOrPayload) {
  Rng rng(0xbadb17);
  for (int i = 0; i < 500; ++i) {
    const Packet p = random_packet(rng);
    const WireFrame f = encode(p);
    for (int pos = 0; pos < f.bits; ++pos) {
      WireFrame g = f;
      g.bytes[static_cast<std::size_t>(pos / 8)] ^=
          static_cast<u8>(1u << (pos % 8));
      const auto d = decode(g);
      if (!d.has_value()) continue;  // detected: resend requested
      EXPECT_EQ(d->type, p.type) << "bit " << pos;
      EXPECT_EQ(d->payload, p.payload) << "bit " << pos;
      EXPECT_NE(d->seq, p.seq) << "bit " << pos;
    }
  }
}

// corrupt(n) must flip exactly n distinct bit positions, all inside the
// frame -- the error-injection model the link simulation relies on.
TEST(ScuPacketProperty, CorruptFlipsExactlyNDistinctBitsInsideTheFrame) {
  Rng rng(0xf11b);
  for (int i = 0; i < 2000; ++i) {
    const Packet p = random_packet(rng);
    const WireFrame f = encode(p);
    const int n = 1 + static_cast<int>(rng.next_below(8));
    WireFrame g = f;
    g.corrupt(n, rng);
    EXPECT_EQ(bits_flipped(f, g), n);
    // No byte beyond the frame's bit length may change.
    for (std::size_t b = static_cast<std::size_t>((f.bits + 7) / 8);
         b < f.bytes.size(); ++b) {
      EXPECT_EQ(f.bytes[b], g.bytes[b]);
    }
  }
}

// No corruption of any weight may silently decode back to the original
// packet: every frame bit feeds either a decoded field or a parity check, so
// an accepted-but-wrong packet must differ from what was sent (and is then
// caught by the end-to-end link checksums, as on the hardware).
TEST(ScuPacketProperty, CorruptionNeverDecodesBackToTheOriginal) {
  Rng rng(0xc0ffee);
  int accepted_but_wrong = 0;
  for (int i = 0; i < 20000; ++i) {
    const Packet p = random_packet(rng);
    WireFrame g = encode(p);
    g.corrupt(1 + static_cast<int>(rng.next_below(4)), rng);
    const auto d = decode(g);
    if (!d.has_value()) continue;
    EXPECT_FALSE(same_packet(p, *d)) << "iteration " << i;
    ++accepted_but_wrong;
  }
  // Multi-bit errors do slip past the header checks sometimes; the property
  // above (never equal to the original) is what protects correctness.  Make
  // sure the test actually exercised that path.
  EXPECT_GT(accepted_but_wrong, 0);
}

}  // namespace
}  // namespace qcdoc::scu
