#include <gtest/gtest.h>

#include <cmath>

#include "lattice/gamma.h"
#include "lattice/su3.h"

namespace qcdoc::lattice {
namespace {

TEST(Su3, IdentityBehaves) {
  const Su3Matrix one = Su3Matrix::identity();
  EXPECT_EQ(one.trace(), Complex(3.0));
  EXPECT_NEAR(std::abs(one.det() - Complex(1.0)), 0.0, 1e-14);
  ColorVector v{{Complex(1, 2), Complex(-3, 0.5), Complex(0, 1)}};
  const ColorVector w = one * v;
  for (int i = 0; i < 3; ++i) EXPECT_EQ(w[i], v[i]);
}

TEST(Su3, RandomElementsAreInTheGroup) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    const Su3Matrix u = random_su3(rng);
    EXPECT_LT(unitarity_violation(u), 1e-12);
  }
}

TEST(Su3, ReunitarizeRepairsPerturbedElements) {
  Rng rng(22);
  for (int i = 0; i < 20; ++i) {
    Su3Matrix u = random_su3(rng);
    for (auto& z : u.m) z += Complex(1e-3 * rng.next_gaussian(),
                                     1e-3 * rng.next_gaussian());
    const Su3Matrix r = reunitarize(u);
    EXPECT_LT(unitarity_violation(r), 1e-12);
    // Repair should be a small perturbation, not a different element.
    double dist = 0;
    for (std::size_t k = 0; k < 9; ++k) dist += std::abs(r.m[k] - u.m[k]);
    EXPECT_LT(dist, 0.1);
  }
}

TEST(Su3, NearIdentityElements) {
  Rng rng(23);
  for (double eps : {1e-4, 1e-2}) {
    const Su3Matrix u = random_su3_near_identity(rng, eps);
    EXPECT_LT(unitarity_violation(u), 1e-12);
    double dist = 0;
    const Su3Matrix one = Su3Matrix::identity();
    for (std::size_t k = 0; k < 9; ++k) dist += std::abs(u.m[k] - one.m[k]);
    EXPECT_LT(dist, 40 * eps);
    EXPECT_GT(dist, 0.0);
  }
}

TEST(Su3, AdjMulMatchesAdjointMultiply) {
  Rng rng(24);
  const Su3Matrix u = random_su3(rng);
  ColorVector v{{Complex(0.3, -1), Complex(2, 0.7), Complex(-0.2, 0.1)}};
  const ColorVector a = adj_mul(u, v);
  const ColorVector b = u.adjoint() * v;
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-14);
  }
}

TEST(Su3, GroupClosureAndInverse) {
  Rng rng(25);
  const Su3Matrix a = random_su3(rng);
  const Su3Matrix b = random_su3(rng);
  EXPECT_LT(unitarity_violation(a * b), 1e-11);
  const Su3Matrix should_be_one = a * a.adjoint();
  const Su3Matrix one = Su3Matrix::identity();
  for (std::size_t k = 0; k < 9; ++k) {
    EXPECT_NEAR(std::abs(should_be_one.m[k] - one.m[k]), 0.0, 1e-13);
  }
}

TEST(Su3, DotIsSesquilinear) {
  ColorVector v{{Complex(1, 1), Complex(0, 2), Complex(3, 0)}};
  EXPECT_NEAR(norm2(v), 2 + 4 + 9, 1e-14);
  const Complex z(0, 1);
  ColorVector zv = z * v;
  EXPECT_NEAR(norm2(zv), norm2(v), 1e-14);  // |i z| = |z|
}

// --- Gamma algebra ----------------------------------------------------------

TEST(Gamma, AnticommutationRelations) {
  // {gamma_mu, gamma_nu} = 2 delta_munu.
  for (int mu = 0; mu < 4; ++mu) {
    for (int nu = 0; nu < 4; ++nu) {
      const SpinMatrix anti = gamma(mu) * gamma(nu) + gamma(nu) * gamma(mu);
      for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
          const Complex expected =
              (mu == nu && i == j) ? Complex(2.0) : Complex(0.0);
          EXPECT_NEAR(std::abs(anti.at(i, j) - expected), 0.0, 1e-14)
              << "mu=" << mu << " nu=" << nu;
        }
      }
    }
  }
}

TEST(Gamma, Gamma5IsProductOfGammas) {
  const SpinMatrix prod = gamma(0) * gamma(1) * gamma(2) * gamma(3);
  const SpinMatrix& g5 = gamma5();
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(std::abs(prod.at(i, j) - g5.at(i, j)), 0.0, 1e-14);
    }
  }
}

TEST(Gamma, GammasAreHermitian) {
  for (int mu = 0; mu < 4; ++mu) {
    const SpinMatrix& g = gamma(mu);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_NEAR(std::abs(g.at(i, j) - std::conj(g.at(j, i))), 0.0, 1e-14);
      }
    }
  }
}

TEST(Gamma, SigmaIsHermitianAndChiralBlockDiagonal) {
  for (int mu = 0; mu < 4; ++mu) {
    for (int nu = mu + 1; nu < 4; ++nu) {
      const SpinMatrix s = sigma(mu, nu);
      for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
          EXPECT_NEAR(std::abs(s.at(i, j) - std::conj(s.at(j, i))), 0.0, 1e-14);
          // Off-chirality blocks vanish in the DeGrand-Rossi basis.
          if ((i < 2) != (j < 2)) {
            EXPECT_NEAR(std::abs(s.at(i, j)), 0.0, 1e-14);
          }
        }
      }
    }
  }
}

Spinor random_spinor(Rng& rng) {
  Spinor s;
  for (int sp = 0; sp < 4; ++sp) {
    for (int c = 0; c < 3; ++c) {
      s[sp][c] = Complex(rng.next_gaussian(), rng.next_gaussian());
    }
  }
  return s;
}

class ProjectionSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ProjectionSweep, ProjectReconstructMatchesGenericGamma) {
  const int mu = std::get<0>(GetParam());
  const int sign = std::get<1>(GetParam());
  Rng rng(100 + mu * 10 + sign);
  for (int trial = 0; trial < 20; ++trial) {
    const Spinor psi = random_spinor(rng);
    // Generic (1 - sign*gamma_mu) psi.
    Spinor expected = psi;
    const Spinor gpsi = gamma(mu) * psi;
    for (int sp = 0; sp < 4; ++sp) {
      for (int c = 0; c < 3; ++c) {
        expected[sp][c] -= static_cast<double>(sign) * gpsi[sp][c];
      }
    }
    const Spinor got = reconstruct(mu, sign, project(mu, sign, psi));
    for (int sp = 0; sp < 4; ++sp) {
      for (int c = 0; c < 3; ++c) {
        EXPECT_NEAR(std::abs(got[sp][c] - expected[sp][c]), 0.0, 1e-13)
            << "mu=" << mu << " sign=" << sign << " spin=" << sp;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDirections, ProjectionSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(+1, -1)));

TEST(HalfSpinor, ProjectionIsIdempotentUpToFactor) {
  // (1 -+ gamma)^2 = 2 (1 -+ gamma): projecting a reconstructed projected
  // spinor doubles it.
  Rng rng(55);
  const Spinor psi = random_spinor(rng);
  for (int mu = 0; mu < 4; ++mu) {
    const Spinor once = reconstruct(mu, +1, project(mu, +1, psi));
    const Spinor twice = reconstruct(mu, +1, project(mu, +1, once));
    for (int sp = 0; sp < 4; ++sp) {
      for (int c = 0; c < 3; ++c) {
        EXPECT_NEAR(std::abs(twice[sp][c] - 2.0 * once[sp][c]), 0.0, 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace qcdoc::lattice
