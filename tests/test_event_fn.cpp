// EventFn unit tests plus the counting-allocator gate: this binary replaces
// the global operator new/delete with counting versions, warms both engines
// on a synthetic cross-node workload, and then asserts that re-running the
// identical workload performs ZERO heap allocations -- the per-event
// std::function allocation the event-path overhaul removed must not creep
// back in anywhere on the hot path (actions, queue buckets, outboxes,
// shard heaps).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/engine.h"
#include "sim/event_fn.h"
#include "sim/parallel_engine.h"

namespace {
std::atomic<qcdoc::u64> g_heap_allocs{0};
}  // namespace

// Counting global allocator.  Counts every allocation in the process
// (including gtest's own); tests only ever assert on deltas across regions
// whose only activity is the engine under test.
void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded != 0 ? rounded : a)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace qcdoc;
using namespace qcdoc::sim;

namespace {

u64 heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

// --- EventFn semantics ------------------------------------------------------

TEST(EventFn, InlineCallableRunsWithoutAllocating) {
  const u64 before = heap_allocs();
  int hits = 0;
  int* p = &hits;
  EventFn fn([p] { ++*p; });
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(heap_allocs() - before, 0u)
      << "a small capture must store inline";
}

TEST(EventFn, MoveTransfersInlineTarget) {
  int hits = 0;
  int* p = &hits;
  EventFn a([p] { ++*p; });
  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  EventFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(EventFn, DestructorRunsCaptureDestructors) {
  struct Probe {
    int* flag;
    explicit Probe(int* f) : flag(f) {}
    Probe(Probe&& o) noexcept : flag(o.flag) { o.flag = nullptr; }
    ~Probe() {
      if (flag != nullptr) ++*flag;
    }
    void operator()() const {}
  };
  int destroyed = 0;
  {
    EventFn fn(Probe{&destroyed});
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(EventFn, OversizeCapturePoolsAndRecycles) {
  struct Big {
    unsigned char pad[96];  // > kInlineBytes, <= kActionPoolBlock
    int* out;
    void operator()() const { ++*out; }
  };
  static_assert(sizeof(Big) > EventFn::kInlineBytes);
  static_assert(sizeof(Big) <= detail::kActionPoolBlock);
  int hits = 0;
  const detail::ActionAllocStats before = detail::action_alloc_stats();
  {
    EventFn fn(Big{{}, &hits});
    fn();
  }
  const detail::ActionAllocStats mid = detail::action_alloc_stats();
  // The block the first action carved is back on the freelist: constructing
  // another oversized action must reuse it, not grow the heap.
  {
    EventFn fn(Big{{}, &hits});
    fn();
  }
  const detail::ActionAllocStats after = detail::action_alloc_stats();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(after.heap_blocks(), mid.heap_blocks())
      << "second pooled action must hit the freelist";
  EXPECT_GT(after.pool_reuses, before.pool_reuses);
}

TEST(EventFn, HugeCaptureCountsAsOversizeAlloc) {
  struct Huge {
    unsigned char pad[detail::kActionPoolBlock + 64];
    void operator()() const {}
  };
  const detail::ActionAllocStats before = detail::action_alloc_stats();
  {
    EventFn fn(Huge{});
    fn();
  }
  const detail::ActionAllocStats after = detail::action_alloc_stats();
  EXPECT_EQ(after.oversize_allocs, before.oversize_allocs + 1);
}

// --- Steady-state zero-allocation gate --------------------------------------

constexpr Cycle kLookahead = 20;
constexpr u32 kNodes = 8;

/// Cross-node relay: an event on `node` schedules the next hop on the
/// neighbouring node kLookahead cycles out.  Capture fits inline.
void hop(Engine* eng, u32 node, int remaining) {
  if (remaining == 0) return;
  EngineRef ref(eng, (node + 1) % kNodes);
  ref.schedule(kLookahead,
               [eng, node, remaining] {
                 hop(eng, (node + 1) % kNodes, remaining - 1);
               });
}

void run_round(Engine& eng) {
  for (u32 n = 0; n < kNodes; ++n) {
    EngineRef ref(&eng, n);
    ref.schedule(1 + n, [&eng, n] { hop(&eng, n, 200); });
  }
  eng.run_until_idle();
}

void expect_steady_state_alloc_free(Engine& eng, const char* what) {
  // Warm-up sizes every queue, bucket, outbox and shard heap to the
  // workload's high-water mark.  The calendar wheels need several rounds:
  // bucket index is time mod 64 and each round starts at a different
  // residue (the per-round start shift cycles with period 8), so only
  // after a full cycle has every reachable (rank, bucket) pair grown to
  // working capacity.
  for (int round = 0; round < 12; ++round) run_round(eng);
  const u64 before = heap_allocs();
  const detail::ActionAllocStats pool_before = detail::action_alloc_stats();
  run_round(eng);
  run_round(eng);
  EXPECT_EQ(heap_allocs() - before, 0u)
      << what << ": steady-state rounds must not allocate";
  EXPECT_EQ(detail::action_alloc_stats().heap_blocks() -
                pool_before.heap_blocks(),
            0u)
      << what << ": action pool must not grow in steady state";
}

TEST(AllocGate, SerialEngineSteadyStateAllocatesNothing) {
  SerialEngine eng;
  expect_steady_state_alloc_free(eng, "serial");
}

TEST(AllocGate, ParallelEngineSteadyStateAllocatesNothing) {
  ParallelConfig cfg;
  cfg.threads = 2;
  cfg.lookahead = kLookahead;
  cfg.num_nodes = static_cast<int>(kNodes);
  ParallelEngine eng(cfg);
  expect_steady_state_alloc_free(eng, "parallel 2t");
}

TEST(AllocGate, ParallelEngineFourThreadsSteadyStateAllocatesNothing) {
  ParallelConfig cfg;
  cfg.threads = 4;
  cfg.lookahead = kLookahead;
  cfg.num_nodes = static_cast<int>(kNodes);
  ParallelEngine eng(cfg);
  expect_steady_state_alloc_free(eng, "parallel 4t");
}

}  // namespace
