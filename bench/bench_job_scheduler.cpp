// E15: multi-tenant job-scheduler storm -- admission control, fair-share,
// boot-image caching and quarantine-driven migration under load.
//
// Paper Section 3.1: the qdaemon "allows several users to have simultaneous
// access to the machine" with partitions handed out by the administrators.
// This bench scales that service up: a storm of small jobs from several
// tenants is thrown at the scheduler faster than it can drain, clients ride
// the typed backpressure with exponential backoff, and mid-run two jobs
// quarantine nodes under their own partitions, forcing checkpoint
// migrations.  Gates (exit 1 on failure): every accepted job completes,
// zero lost or duplicated results, every job's digest is bit-exact against
// an unfaulted reference run, at least one migration happened, and the p99
// warm (image-cache hit) time-to-boot beats cold by at least 2x.
#include <bit>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "host/qcsh.h"
#include "snapshot/bytes.h"

using namespace qcdoc;

namespace {

constexpr int kJobs = 96;     // >= 64 queued across the storm
constexpr int kTenants = 5;   // >= 4 tenants
constexpr int kImages = 3;    // shared images exercise the boot cache

struct StepperState {
  u64 acc = sim::detail::kFnvOffset;
  bool live = false;
};

/// One deterministic digest job: every step folds a partition-wide global
/// sum keyed by (job, step, rank) into a running FNV, carried across
/// migrations through the checkpoint.  The digest depends only on the
/// logical partition shape, never on which machine box it occupied.
host::JobSpec make_job(int idx, machine::Machine* m, host::Qdaemon* qd,
                       std::map<std::string, u64>* digests, bool inject) {
  host::JobSpec spec;
  spec.name = "j" + std::to_string(idx);
  spec.user = "tenant" + std::to_string(idx % kTenants);
  spec.image = "app" + std::to_string(idx % kImages) + ".elf";
  spec.box = torus::Shape{{2, 2, 1, 1, 1, 1}};
  spec.logical_dims = 2;
  const int steps = 4 + idx % 5;
  // Two jobs sabotage their own partitions mid-run: the quarantine revokes
  // the handle and the scheduler must checkpoint-migrate them.
  const bool trigger = inject && (idx == 13 || idx == 37);
  auto state = std::make_shared<StepperState>();
  const std::string name = spec.name;
  spec.body = [=, &sched_digests = *digests](host::JobContext& ctx)
      -> host::StepStatus {
    if (ctx.resume != nullptr) {
      snapshot::ByteSource src(*ctx.resume, "bench checkpoint");
      u64 step = 0, acc = 0;
      if (!src.get_u64(&step) || !src.get_u64(&acc) ||
          !src.expect_exhausted() || step != ctx.step) {
        return host::StepStatus::kError;
      }
      state->acc = acc;
      state->live = true;
    } else if (ctx.step == 0) {
      state->acc = sim::detail::kFnvOffset;
      state->live = true;
    } else if (!state->live) {
      return host::StepStatus::kError;  // checkpoint chain broke
    }
    if (trigger && static_cast<int>(ctx.step) == 2) {
      qd->quarantine_node(ctx.partition->nodes()[0]);
    }
    const int ranks = ctx.partition->num_nodes();
    std::vector<double> contrib(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      contrib[static_cast<std::size_t>(r)] =
          1.0 / static_cast<double>(1 + r + 3 * static_cast<int>(ctx.step) +
                                    7 * idx);
    }
    const auto sum = ctx.comm->global_sum(contrib);
    m->engine().run_until(m->engine().now() + sum.cycles);
    state->acc = sim::detail::fnv1a(state->acc, std::bit_cast<u64>(sum.value));
    if (static_cast<int>(ctx.step) + 1 >= steps) {
      sched_digests[name] = state->acc;
      ctx.output->push_back("digest " + std::to_string(state->acc));
      return host::StepStatus::kDone;
    }
    snapshot::ByteSink sink;
    sink.put_u64(ctx.step + 1);
    sink.put_u64(state->acc);
    ctx.checkpoint = sink.take();
    return host::StepStatus::kYield;
  };
  return spec;
}

struct CampaignResult {
  std::map<std::string, u64> digests;  ///< one entry per completed job
  host::SchedulerReport report;
  int accepted = 0;
  int done = 0;
  int output_lines = 0;
  double wall_seconds = 0;
  Cycle end_cycle = 0;
};

CampaignResult run_campaign(bool inject_quarantine) {
  CampaignResult res;
  machine::MachineConfig mcfg;
  mcfg.shape.extent = {4, 4, 2, 1, 1, 1};  // 32 nodes = 8 2x2 boxes
  machine::Machine m(mcfg);
  host::Qdaemon qd(&m);
  qd.boot();

  host::SchedulerConfig cfg;
  cfg.max_queued = 24;
  cfg.max_queued_per_user = 8;
  cfg.max_running = 4;
  host::JobScheduler sched(&qd, cfg);
  sched.set_share("tenant0", 2.0);  // one premium tenant in the mix

  const auto t0 = std::chrono::steady_clock::now();
  host::RetryPolicy policy;
  policy.base_delay_cycles = 4096;
  policy.max_attempts = 12;
  Rng rng(2026);
  std::vector<host::JobId> ids;
  for (int j = 0; j < kJobs; ++j) {
    const auto out = host::submit_with_retry(
        sched,
        make_job(j, &m, &qd, &res.digests, inject_quarantine), policy, rng);
    if (out.accepted) {
      ++res.accepted;
      ids.push_back(out.id);
    } else {
      std::printf("  submission j%d gave up: %s\n", j, out.detail.c_str());
    }
  }
  sched.run_until_idle();
  res.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

  for (const host::JobId id : ids) {
    const host::JobStatusInfo st = sched.status(id);
    if (st.state == host::JobState::kDone) ++res.done;
    res.output_lines += static_cast<int>(st.output.size());
  }
  res.report = sched.report();
  res.end_cycle = m.engine().now();
  std::printf("%s\n", perf::format_scheduler_report(sched.report()).c_str());
  bench::print_engine(m);
  return res;
}

u64 percentile(std::vector<Cycle> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

void write_json(const char* path, const CampaignResult& r, double jobs_per_sec,
                bool gates_ok) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"scheduler\",\n");
  std::fprintf(f, "  \"bench_env\": {\"sanitizer\": \"%s\"},\n",
               bench::sanitizer_tag());
  std::fprintf(f, "  \"jobs\": %d,\n", kJobs);
  std::fprintf(f, "  \"tenants\": %d,\n", kTenants);
  std::fprintf(f, "  \"accepted\": %d,\n", r.accepted);
  std::fprintf(f, "  \"completed\": %llu,\n",
               static_cast<unsigned long long>(r.report.completed));
  std::fprintf(f, "  \"rejections_queue_full\": %llu,\n",
               static_cast<unsigned long long>(r.report.rejected_queue_full));
  std::fprintf(f, "  \"rejections_quota\": %llu,\n",
               static_cast<unsigned long long>(r.report.rejected_quota));
  std::fprintf(f, "  \"migrations\": %llu,\n",
               static_cast<unsigned long long>(r.report.migrations));
  std::fprintf(f, "  \"jobs_per_sec\": %.1f,\n", jobs_per_sec);
  std::fprintf(f, "  \"time_to_boot_cycles\": {\n");
  std::fprintf(f, "    \"cold_n\": %zu, \"cold_p50\": %llu, \"cold_p99\": %llu,\n",
               r.report.cold_boot_cycles.size(),
               static_cast<unsigned long long>(
                   percentile(r.report.cold_boot_cycles, 0.5)),
               static_cast<unsigned long long>(
                   percentile(r.report.cold_boot_cycles, 0.99)));
  std::fprintf(f, "    \"warm_n\": %zu, \"warm_p50\": %llu, \"warm_p99\": %llu\n",
               r.report.warm_boot_cycles.size(),
               static_cast<unsigned long long>(
                   percentile(r.report.warm_boot_cycles, 0.5)),
               static_cast<unsigned long long>(
                   percentile(r.report.warm_boot_cycles, 0.99)));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"gates_ok\": %s\n", gates_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

bool gate(bool ok, const char* what) {
  std::printf("gate %-46s %s\n", what, ok ? "PASS" : "FAIL");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = "BENCH_scheduler.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  bench::print_header(
      "E15: bench_job_scheduler -- multi-tenant storm with migration",
      "the qdaemon allows several users to have simultaneous access to "
      "the machine");

  std::printf("reference (unfaulted) campaign:\n");
  const CampaignResult ref = run_campaign(/*inject_quarantine=*/false);
  std::printf("\nfaulted campaign (quarantine mid-run):\n");
  const CampaignResult got = run_campaign(/*inject_quarantine=*/true);

  // Per-job bit-exactness: every digest from the faulted run (including the
  // migrated jobs, which finished on different boxes than they started on)
  // must equal the unfaulted reference.
  int mismatched = 0;
  for (const auto& [name, bits] : ref.digests) {
    const auto it = got.digests.find(name);
    if (it == got.digests.end() || it->second != bits) ++mismatched;
  }

  const u64 cold_p99 = percentile(got.report.cold_boot_cycles, 0.99);
  const u64 warm_p99 = percentile(got.report.warm_boot_cycles, 0.99);

  std::printf("\n");
  bool ok = true;
  ok &= gate(ref.accepted == kJobs && got.accepted == kJobs,
             "every submission eventually accepted");
  ok &= gate(got.done == got.accepted, "every accepted job completed");
  ok &= gate(static_cast<int>(got.digests.size()) == kJobs &&
                 got.output_lines == kJobs,
             "zero lost or duplicated results");
  ok &= gate(mismatched == 0, "migrated digests bit-exact vs unfaulted");
  ok &= gate(got.report.migrations >= 1, "quarantine forced a migration");
  ok &= gate(got.report.rejected_queue_full + got.report.rejected_quota > 0,
             "storm actually hit the admission bound");
  ok &= gate(warm_p99 > 0 && cold_p99 >= 2 * warm_p99,
             "warm p99 time-to-boot >= 2x better than cold");

  const double jobs_per_sec =
      got.wall_seconds > 0 ? got.done / got.wall_seconds : 0.0;
  write_json(json_path, got, jobs_per_sec, ok);

  std::vector<perf::Row> rows = {
      {"E15", "jobs completed", kJobs, static_cast<double>(got.done), "jobs"},
      {"E15", "migrations", 0, static_cast<double>(got.report.migrations),
       "jobs"},
      {"E15", "cold p99 time-to-boot", 0, static_cast<double>(cold_p99),
       "cycles"},
      {"E15", "warm p99 time-to-boot", 0, static_cast<double>(warm_p99),
       "cycles"},
      {"E15", "cold/warm p99 ratio", 2.0,
       warm_p99 > 0 ? static_cast<double>(cold_p99) / warm_p99 : 0.0, "x"},
  };
  bench::print_rows(rows);
  return ok ? 0 : 1;
}
