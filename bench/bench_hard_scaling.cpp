// E7: hard scaling of a fixed-size problem, QCDOC mesh vs commodity
// cluster.
//
// Paper Section 1: "low latency is also vital if a problem of a fixed size
// is to be run on a machine with tens of thousands of nodes, since adding
// more nodes generally increases the ratio of inter-node communication to
// local floating point operations ... commercial cluster solutions have
// limitations for QCD, since one cannot achieve the required low-latency
// communications with commodity hardware."
//
// A fixed 8^4 lattice is spread over 16..256 nodes: local volumes shrink from the paper's
// 4^4 down to 2^4, the regime the network was designed for.  The QCDOC line comes
// from the packet-level simulation; the cluster line gives the same nodes
// the paper's commodity network (7.5 us message start, GigE bandwidth,
// log-tree allreduce) on identical compute.
#include <chrono>
#include <cstdlib>
#include <thread>

#include "bench_util.h"
#include "lattice/cg.h"
#include "lattice/rig.h"
#include "lattice/wilson.h"
#include "net/cluster_net.h"
#include "torus/partition.h"

using namespace qcdoc;
using namespace qcdoc::lattice;

namespace {

struct ScalePoint {
  int nodes;
  double qcdoc_ms_per_iter;
  double qcdoc_efficiency;
  double qcdoc_comm_fraction;
  double cluster_ms_per_iter;
};

ScalePoint run(std::array<int, 6> shape) {
  const Coord4 global{8, 8, 8, 8};
  SolverRig rig(shape, global);
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(7);
  gauge.randomize_near_unit(rng, 0.15);
  WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge, WilsonParams{});
  DistField x = op.make_field("x");
  DistField b = op.make_field("b");
  x.zero();
  rig.fill_source(b);
  CgParams params;
  params.fixed_iterations = 3;
  const CgResult r = cg_solve(op, x, b, params);

  ScalePoint pt;
  pt.nodes = rig.m->num_nodes();
  pt.qcdoc_ms_per_iter =
      rig.m->seconds(r.cycles) * 1e3 / params.fixed_iterations;
  pt.qcdoc_efficiency = perf::cg_efficiency(*rig.m, r);
  pt.qcdoc_comm_fraction =
      (r.comm_cycles + r.global_cycles) / static_cast<double>(r.cycles);

  // Cluster model: identical compute cycles, commodity communication.
  net::ClusterNetConfig ccfg;
  ccfg.cpu_clock_hz = rig.m->hw().cpu_clock_hz;
  net::ClusterNet cluster(ccfg);
  // Per iteration: 2 halo exchanges (8 messages each) + 2 allreduces.
  int distributed_dims = 0;
  double face_bytes = 0;
  for (int mu = 0; mu < kNd; ++mu) {
    if (rig.geom->nodes_in_dim(mu) > 1) {
      ++distributed_dims;
      face_bytes += rig.geom->local().face_volume(mu) * 96.0;
    }
  }
  const double avg_face =
      distributed_dims > 0 ? face_bytes / distributed_dims : 0;
  const Cycle comm_per_iter =
      2 * cluster.halo_exchange_cycles(2 * distributed_dims,
                                       static_cast<std::size_t>(avg_face)) +
      2 * cluster.allreduce_cycles(pt.nodes, 1);
  const double compute_cycles_per_iter =
      r.compute_cycles / params.fixed_iterations;
  pt.cluster_ms_per_iter =
      (compute_cycles_per_iter + static_cast<double>(comm_per_iter)) /
      ccfg.cpu_clock_hz * 1e3;
  return pt;
}

// --- Simulator engine scaling ----------------------------------------------
//
// How fast can we *simulate* the machine?  The same boot + CG workload on a
// 4^6 = 4096-node machine, run once on the serial engine and once on the
// parallel engine, with the event-order digests compared: the parallel
// engine must be bit-identical, and any wall-clock gain is pure profit.

struct EngineRun {
  int threads;
  double wall_seconds;
  u64 digest;
  u64 events;
  Cycle end_cycle;
  u64 heap_blocks_steady;
  sim::EngineReport report;
};

EngineRun run_engine(std::array<int, 6> shape, Coord4 global, int threads,
                     int iterations) {
  const auto t0 = std::chrono::steady_clock::now();
  machine::MachineConfig cfg;
  cfg.shape.extent = shape;
  cfg.sim_threads = threads;
  machine::Machine m(cfg);
  m.power_on();
  const torus::Partition part = torus::fold_to_4d(m.topology());
  SolverRig rig(&m, &part, global);
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(7);
  gauge.randomize_near_unit(rng, 0.15);
  WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge, WilsonParams{});
  DistField x = op.make_field("x");
  DistField b = op.make_field("b");
  x.zero();
  rig.fill_source(b);
  // One warm-up iteration fills the action pool and grows every queue to
  // its working size; the measured solve after the snapshot must then run
  // without allocating a single heap block per event.
  CgParams warm;
  warm.fixed_iterations = 1;
  cg_solve(op, x, b, warm);
  const u64 heap0 = sim::detail::action_alloc_stats().heap_blocks();
  x.zero();
  CgParams params;
  params.fixed_iterations = iterations;
  cg_solve(op, x, b, params);

  EngineRun er;
  er.threads = threads;
  er.wall_seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  er.heap_blocks_steady =
      sim::detail::action_alloc_stats().heap_blocks() - heap0;
  er.digest = m.engine().trace_digest();
  er.events = m.engine().events_executed();
  er.end_cycle = m.engine().now();
  er.report = m.engine().report();
  return er;
}

void engine_scaling_section() {
  // A full 4^6 machine unless QCDOC_BENCH_SHAPE=small asks for the quicker
  // 4x4x4x4x2x2 = 1024-node variant.
  std::array<int, 6> shape{4, 4, 4, 4, 4, 4};
  Coord4 global{8, 8, 8, 64};
  const char* small = std::getenv("QCDOC_BENCH_SHAPE");
  if (small && std::string(small) == "small") {
    shape = {4, 4, 4, 4, 2, 2};
    global = {8, 8, 8, 16};
  }
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "\nsimulator engine scaling (%dx%dx%dx%dx%dx%d machine, %u host "
      "core%s):\n",
      shape[0], shape[1], shape[2], shape[3], shape[4], shape[5], cores,
      cores == 1 ? "" : "s");

  const EngineRun serial = run_engine(shape, global, 1, 2);
  std::printf("  serial:   %7.2fs wall, %llu events, digest %016llx\n",
              serial.wall_seconds,
              static_cast<unsigned long long>(serial.events),
              static_cast<unsigned long long>(serial.digest));
  const EngineRun par = run_engine(shape, global, 4, 2);
  std::printf("  4 threads:%7.2fs wall, %llu events, digest %016llx\n",
              par.wall_seconds, static_cast<unsigned long long>(par.events),
              static_cast<unsigned long long>(par.digest));
  std::printf("  %s\n",
              perf::format_engine_report(par.report, /*wall_clock=*/true)
                  .c_str());
  const EngineRun par2 = run_engine(shape, global, 2, 2);

  const bool identical = serial.digest == par.digest &&
                         serial.events == par.events &&
                         serial.end_cycle == par.end_cycle &&
                         serial.digest == par2.digest &&
                         serial.events == par2.events;
  const double speedup = par.wall_seconds > 0
                             ? serial.wall_seconds / par.wall_seconds
                             : 0.0;
  std::printf("  deterministic: %s   speedup: %.2fx\n",
              identical ? "yes (bit-identical digests at 1/2/4 threads)"
                        : "NO -- BUG",
              speedup);

  std::vector<bench::EngineBenchRun> runs;
  for (const EngineRun* r : {&serial, &par2, &par}) {
    bench::EngineBenchRun br;
    br.engine = r->threads == 1 ? "serial" : "parallel";
    br.threads = r->threads;
    br.events = r->events;
    br.wall_seconds = r->wall_seconds;
    br.digest = r->digest;
    br.heap_blocks_steady = r->heap_blocks_steady;
    runs.push_back(br);
  }
  bench::write_engine_bench_json("BENCH_engine.json", runs, speedup,
                                 identical);

  if (!identical) std::exit(1);
  // Count-based zero-allocation gate: with the action pool warm, the
  // measured CG phase must not allocate a single heap block per event.
  for (const EngineRun* r : {&serial, &par2, &par}) {
    if (r->heap_blocks_steady != 0) {
      std::printf(
          "  FAIL: %d-thread steady-state run allocated %llu heap blocks\n",
          r->threads,
          static_cast<unsigned long long>(r->heap_blocks_steady));
      std::exit(1);
    }
  }
  std::printf("  steady-state heap blocks per event: 0 (gate passed)\n");
  // The >= 2x expectation only stands where the hardware can physically
  // deliver it; on fewer than 4 cores we report the measured number and the
  // determinism guarantee carries the bench.
  if (cores >= 4 && speedup < 2.0) {
    std::printf("  WARNING: expected >= 2x on %u cores, got %.2fx\n", cores,
                speedup);
  }
}

}  // namespace

int main() {
  bench::print_header(
      "E7: bench_hard_scaling -- fixed 8^4 lattice, 16 to 256 nodes",
      "the mesh keeps scaling as local volumes shrink; a commodity network "
      "(5-10 us message start) flattens out as communication dominates");

  std::printf(
      "%8s %12s %10s %10s | %12s %10s\n", "nodes", "qcdoc ms/it", "eff %",
      "comm %", "cluster ms/it", "slowdown");
  ScalePoint first{};
  for (const auto shape :
       std::vector<std::array<int, 6>>{{2, 2, 2, 2, 1, 1},
                                       {4, 2, 2, 2, 1, 1},
                                       {4, 4, 2, 2, 1, 1},
                                       {4, 4, 4, 2, 1, 1},
                                       {4, 4, 4, 4, 1, 1}}) {
    // local volumes run from the paper's 4^4 benchmark point down to 2^4,
    // the deep hard-scaling regime where only a low-latency mesh survives.
    const auto pt = run(shape);
    if (first.nodes == 0) first = pt;
    std::printf("%8d %12.3f %10.1f %10.1f | %12.3f %10.2fx\n", pt.nodes,
                pt.qcdoc_ms_per_iter, 100 * pt.qcdoc_efficiency,
                100 * pt.qcdoc_comm_fraction, pt.cluster_ms_per_iter,
                pt.cluster_ms_per_iter / pt.qcdoc_ms_per_iter);
  }
  std::printf(
      "\nhard-scaling figure of merit (16 -> 256 nodes, ideal = 16x):\n");
  const auto last = run({4, 4, 4, 4, 1, 1});
  std::vector<perf::Row> rows = {
      {"E7", "qcdoc speedup 16->256", 16.0,
       first.qcdoc_ms_per_iter / last.qcdoc_ms_per_iter, "x"},
      {"E7", "cluster speedup 16->256", 16.0,
       first.cluster_ms_per_iter / last.cluster_ms_per_iter, "x"},
  };
  bench::print_rows(rows);
  engine_scaling_section();
  return 0;
}
