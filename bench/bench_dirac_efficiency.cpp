// E1: CG efficiency of the Dirac solvers on a 4^4 local volume.
//
// Paper Section 4: "Our current performance figures come from solving the
// Dirac equation, using a conjugate gradient solver, on a 128 node QCDOC
// ... On a 4^4 local volume, we sustain 40%, 38% and 46.5% of peak speed"
// for naive Wilson, ASQTAD staggered, and clover-improved Wilson, in full
// double precision; "performance for single precision is slightly higher
// due to the decreased bandwidth"; domain-wall fermions are "expect[ed]
// [to] surpass the performance of the clover improved Wilson operator".
#include <memory>

#include "bench_util.h"
#include "lattice/cg.h"
#include "lattice/clover.h"
#include "lattice/dwf.h"
#include "lattice/rig.h"
#include "lattice/staggered.h"
#include "lattice/twisted_mass.h"
#include "lattice/wilson.h"

namespace {

using namespace qcdoc;
using namespace qcdoc::lattice;

struct RunResult {
  double efficiency = 0;
  double sustained_mflops = 0;
  TrafficByPrecision traffic{};
};

template <typename MakeOp>
RunResult run_cg(Coord4 global, MakeOp make_op) {
  SolverRig rig({2, 2, 2, 2, 1, 1}, global);
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(7);
  gauge.randomize_near_unit(rng, 0.15);
  auto op = make_op(rig, gauge);
  DistField x = op->make_field("x");
  DistField b = op->make_field("b");
  x.zero();
  rig.fill_source(b);
  CgParams params;
  params.fixed_iterations = 10;
  const CgResult r = cg_solve(*op, x, b, params);
  return RunResult{perf::cg_efficiency(*rig.m, r),
                   perf::cg_sustained_mflops(*rig.m, r), r.traffic};
}

}  // namespace

int main() {
  bench::print_header(
      "E1: bench_dirac_efficiency -- CG efficiency, 4^4 local volume",
      "Wilson 40%, ASQTAD 38%, clover 46.5% of peak (double precision); "
      "single precision slightly higher; domain wall expected > clover");

  const Coord4 g44{8, 8, 8, 8};  // 4^4 local on a 2^4-node partition

  const auto wilson = run_cg(g44, [](SolverRig& rig, GaugeField& g) {
    return std::make_unique<WilsonDirac>(rig.ops.get(), rig.geom.get(), &g,
                                         WilsonParams{});
  });
  const auto wilson_sp = run_cg(g44, [](SolverRig& rig, GaugeField& g) {
    WilsonParams p;
    p.single_precision = true;
    return std::make_unique<WilsonDirac>(rig.ops.get(), rig.geom.get(), &g, p);
  });
  const auto clover = run_cg(g44, [](SolverRig& rig, GaugeField& g) {
    return std::make_unique<CloverDirac>(rig.ops.get(), rig.geom.get(), &g,
                                         CloverParams{});
  });
  const auto asqtad = run_cg(g44, [](SolverRig& rig, GaugeField& g) {
    return std::make_unique<AsqtadDirac>(rig.ops.get(), rig.geom.get(), &g,
                                         AsqtadParams{});
  });
  const auto dwf = run_cg(g44, [](SolverRig& rig, GaugeField& g) {
    return std::make_unique<DwfDirac>(rig.ops.get(), rig.geom.get(), &g,
                                      DwfParams{.ls = 8});
  });
  const auto wilson_hp = run_cg(g44, [](SolverRig& rig, GaugeField& g) {
    return std::make_unique<WilsonDirac>(
        rig.ops.get(), rig.geom.get(), &g,
        WilsonParams{.precision = Precision::kHalf});
  });
  const auto twisted = run_cg(g44, [](SolverRig& rig, GaugeField& g) {
    return std::make_unique<TwistedMassDirac>(rig.ops.get(), rig.geom.get(),
                                              &g,
                                              TwistedMassParams{.mu = 0.05});
  });

  std::vector<qcdoc::perf::Row> rows = {
      {"E1", "wilson dp", 40.0, 100 * wilson.efficiency, "% of peak"},
      {"E1", "asqtad dp", 38.0, 100 * asqtad.efficiency, "% of peak"},
      {"E1", "clover dp", 46.5, 100 * clover.efficiency, "% of peak"},
      {"E1", "wilson sp", 40.0, 100 * wilson_sp.efficiency,
       "% (paper: slightly > dp)"},
      {"E1", "wilson hp", 40.0, 100 * wilson_hp.efficiency,
       "% (block-float 16-bit storage)"},
      {"E1", "twisted dp", 40.0, 100 * twisted.efficiency,
       "% (twist term rides the Wilson kernel)"},
      {"E1", "dwf dp", 46.5, 100 * dwf.efficiency,
       "% (paper: expected > clover)"},
  };
  bench::print_rows(rows);
  std::printf("\nwilson hp per-precision traffic (10 iterations):\n%s",
              perf::format_traffic_report(wilson_hp.traffic).c_str());
  std::printf(
      "\nsustained per node (16-node machine, 500 MHz):\n"
      "  wilson %.0f Mflops, clover %.0f, asqtad %.0f, dwf %.0f of 1000 peak\n",
      wilson.sustained_mflops / 16, clover.sustained_mflops / 16,
      asqtad.sustained_mflops / 16, dwf.sustained_mflops / 16);
  return 0;
}
