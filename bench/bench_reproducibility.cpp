// E12: bit-identical re-runs and link checksums.
//
// Paper Section 4: "A five day simulation was completed on a 128 node
// machine in December, 2003 and then redone, with the requirement that the
// resulting QCD configuration be identical in all bits.  This was found to
// be the case.  No hardware errors on the SCU links were reported."
//
// The bench evolves a quenched gauge configuration by heatbath, solves the
// Wilson-Dirac equation on it, and repeats the whole run: configuration,
// solution, plaquette, simulated machine time and every per-link checksum
// must match bit for bit.
#include "bench_util.h"
#include "host/diagnostics.h"
#include "lattice/cg.h"
#include "lattice/rig.h"
#include "lattice/wilson.h"

using namespace qcdoc;
using namespace qcdoc::lattice;

namespace {

struct EvolutionResult {
  double plaquette;
  double solution_norm;
  Cycle machine_cycles;
  u64 checksum_signature;  // XOR over all link checksums
  bool checksums_match;
  u64 scu_errors;
};

EvolutionResult run_once() {
  SolverRig rig({2, 2, 2, 2, 1, 1}, {8, 8, 8, 8});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(20031208);  // the December 2003 verification run
  gauge.randomize(rng);
  for (int sweep = 0; sweep < 2; ++sweep) gauge.heatbath_sweep(5.7, rng);

  WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                 WilsonParams{.kappa = 0.12});
  DistField x = op.make_field("x");
  DistField b = op.make_field("b");
  x.zero();
  rig.fill_source(b);
  CgParams params;
  params.fixed_iterations = 20;
  (void)cg_solve(op, x, b, params);

  EvolutionResult res;
  res.plaquette = gauge.average_plaquette();
  res.solution_norm = rig.ops->norm2(x);
  res.machine_cycles = rig.bsp->now();
  res.checksums_match = rig.m->mesh().verify_link_checksums();
  res.checksum_signature = 0;
  for (const auto& edge : rig.m->topology().edges()) {
    res.checksum_signature ^=
        rig.m->scu(edge.from).send_checksum(edge.link);
  }
  res.scu_errors = rig.m->mesh().total_stat("scu.detected_errors") +
                   rig.m->mesh().total_stat("scu.undetected_errors");
  return res;
}

}  // namespace

int main() {
  bench::print_header(
      "E12: bench_reproducibility -- bit-identical re-run verification",
      "a repeated evolution + solve must be identical in all bits; link "
      "checksums agree; no SCU errors");

  const auto a = run_once();
  const auto b = run_once();

  const bool bits_identical = a.plaquette == b.plaquette &&
                              a.solution_norm == b.solution_norm &&
                              a.machine_cycles == b.machine_cycles &&
                              a.checksum_signature == b.checksum_signature;

  std::printf("run 1: plaquette %.15f  |x|^2 %.15e  cycles %llu\n",
              a.plaquette, a.solution_norm,
              static_cast<unsigned long long>(a.machine_cycles));
  std::printf("run 2: plaquette %.15f  |x|^2 %.15e  cycles %llu\n",
              b.plaquette, b.solution_norm,
              static_cast<unsigned long long>(b.machine_cycles));

  std::vector<perf::Row> rows = {
      {"E12", "bit-identical re-run", 1, bits_identical ? 1.0 : 0.0, "bool"},
      {"E12", "link checksums match", 1,
       (a.checksums_match && b.checksums_match) ? 1.0 : 0.0, "bool"},
      {"E12", "SCU errors", 0, static_cast<double>(a.scu_errors + b.scu_errors),
       "errors"},
  };
  bench::print_rows(rows);
  return bits_identical ? 0 : 1;
}
