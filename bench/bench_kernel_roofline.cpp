// E14 (extension): kernel roofline -- which resource bounds each Dirac
// kernel on the QCDOC node, and why the efficiency ladder looks the way it
// does.
//
// The paper's efficiency ordering (clover > wilson > asqtad; DWF expected
// best; DDR spills collapse to ~30%) is a statement about the balance
// between the 2-flop/cycle FPU, the load/store pipe, the 16 B/cycle
// prefetching EDRAM and the non-overlapped DDR path.  This bench prints the
// per-site cycle breakdown of every kernel in both residencies.
#include "bench_util.h"
#include "lattice/clover.h"
#include "lattice/dwf.h"
#include "lattice/rig.h"
#include "lattice/staggered.h"
#include "lattice/wilson.h"

using namespace qcdoc;
using namespace qcdoc::lattice;

namespace {

void print_row(const char* name, const cpu::CpuModel& model,
               const cpu::KernelProfile& p, double sites) {
  const auto b = model.analyze(p);
  std::printf("%-14s %8.0f %8.0f %8.0f %8.0f %8.0f %9.0f %7s %8.1f%%\n", name,
              b.fpu_cycles / sites, b.lsu_cycles / sites,
              b.edram_cycles / sites, b.ddr_cycles / sites,
              b.overhead_cycles / sites, b.total_cycles / sites, b.bound,
              100.0 * p.flops() / (2.0 * b.total_cycles));
}

}  // namespace

int main() {
  bench::print_header(
      "E14: bench_kernel_roofline -- per-site cycle breakdown of the kernels",
      "the efficiency ladder follows the FPU/LSU/EDRAM balance; DDR "
      "residency adds exposed stalls (the ~30% collapse)");

  SolverRig rig({2, 2, 2, 2, 1, 1}, {8, 8, 8, 8});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  gauge.set_unit();
  const double v = rig.geom->local().volume();

  WilsonDirac wilson(rig.ops.get(), rig.geom.get(), &gauge, WilsonParams{});
  CloverDirac clover(rig.ops.get(), rig.geom.get(), &gauge, CloverParams{});
  AsqtadDirac asqtad(rig.ops.get(), rig.geom.get(), &gauge, AsqtadParams{});
  DwfDirac dwf(rig.ops.get(), rig.geom.get(), &gauge, DwfParams{.ls = 8});

  std::printf("%-14s %8s %8s %8s %8s %8s %9s %7s %9s\n", "kernel (per",
              "fpu", "lsu", "edram", "ddr", "ovrhead", "total", "bound",
              "kernel");
  std::printf("%-14s %8s %8s %8s %8s %8s %9s %7s %9s\n", " site cycles)",
              "", "", "", "", "", "", "", "eff");

  const auto& model = *rig.cpu;
  print_row("wilson", model, wilson.site_profile(memsys::Region::kEdram), v);
  print_row("clover term", model, clover.clover_profile(), v);
  print_row("asqtad", model, asqtad.site_profile(memsys::Region::kEdram), v);
  print_row("dwf (per s)", model,
            dwf.site_profile(memsys::Region::kEdram).scaled(1.0 / 8.0), v);

  std::printf("\nsame kernels with spinors resident in DDR:\n");
  print_row("wilson/ddr", model, wilson.site_profile(memsys::Region::kDdr), v);
  print_row("asqtad/ddr", model, asqtad.site_profile(memsys::Region::kDdr), v);

  std::printf(
      "\nall kernels are FPU-issue bound while the working set stays in "
      "EDRAM -- the\nprefetching controller does its job -- and pick up "
      "additive stalls once spinors\nspill to DDR, which is exactly the "
      "paper's volume/efficiency cliff.\n");
  return 0;
}
