// E9: the "three in the air" acknowledgement window (ablation).
//
// Paper Section 2.2: "up to three, 64 bit data words can be sent before an
// acknowledgement is given.  This 'three in the air' protocol allows full
// bandwidth to be achieved between nodes, and amortizes the time for a
// round-trip handshake."  Sweeping the window shows why three: one and two
// words in flight leave the wire idle during the handshake; three saturate
// the 72-bit serialization.
#include <memory>

#include "bench_util.h"
#include "common/rng.h"
#include "scu/link.h"
#include "sim/engine.h"

using namespace qcdoc;
using namespace qcdoc::scu;

namespace {

/// Achieved payload bandwidth (fraction of the 64/72 wire limit) for a
/// window size.
double bandwidth_fraction(int window) {
  sim::SerialEngine engine;
  sim::StatSet stats;
  hssl::HsslConfig hc;
  hc.training_cycles = 16;
  Rng rng(42);
  LinkParams params;
  params.ack_window = window;
  auto wab = std::make_unique<hssl::Hssl>(&engine, hc, rng.split(), &stats);
  auto wba = std::make_unique<hssl::Hssl>(&engine, hc, rng.split(), &stats);
  SendSide send_a(&engine, wab.get(), params, &stats);
  SendSide send_b(&engine, wba.get(), params, &stats);
  RecvSide recv_a(&engine, params, &stats, rng.split());
  RecvSide recv_b(&engine, params, &stats, rng.split());
  send_a.set_remote(&recv_b);
  send_b.set_remote(&recv_a);
  recv_b.set_reverse(&send_b);
  recv_a.set_reverse(&send_a);
  wab->power_on();
  wba->power_on();

  recv_b.set_data_sink([](u64) {});
  const int n = 500;
  for (int i = 0; i < n; ++i) send_a.enqueue_data(static_cast<u64>(i));
  engine.run_until_idle();
  const double cycles = static_cast<double>(engine.now() - 16);
  const double ideal = n * 72.0;  // back-to-back 72-bit frames
  return ideal / cycles;
}

}  // namespace

int main() {
  bench::print_header(
      "E9: bench_ack_window -- 'three in the air' ablation",
      "window 3 sustains full link bandwidth; smaller windows stall on the "
      "acknowledgement round trip");

  std::vector<perf::Row> rows;
  for (int w = 1; w <= 4; ++w) {
    const double frac = bandwidth_fraction(w);
    char qty[48];
    std::snprintf(qty, sizeof(qty), "window %d", w);
    rows.push_back({"E9", qty, w >= 3 ? 100.0 : 0.0, 100.0 * frac,
                    "% of serialization limit"});
  }
  bench::print_rows(rows);
  std::printf(
      "\nper-link payload at window 3: %.1f MB/s of %.1f MB/s wire limit "
      "(500 MHz)\n",
      bandwidth_fraction(3) * 64.0 / 72.0 * 500e6 / 8 / 1e6,
      64.0 / 72.0 * 500e6 / 8 / 1e6);
  return 0;
}
