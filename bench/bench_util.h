// Shared helpers for the experiment benches: every bench prints a
// paper-vs-measured table for its experiment id from DESIGN.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "perf/report.h"

namespace qcdoc::bench {

// Which sanitizers this binary was built with (set by the top-level
// CMakeLists from QCDOC_SANITIZE / QCDOC_TSAN / QCDOC_UBSAN).
#ifndef QCDOC_SANITIZER_TAG
#define QCDOC_SANITIZER_TAG "none"
#endif

inline const char* sanitizer_tag() { return QCDOC_SANITIZER_TAG; }

inline void print_header(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", claim);
  // Machine-readable build provenance: numbers measured under a sanitizer
  // are an order of magnitude off and must never be quoted as real perf.
  std::printf("{\"bench_env\": {\"sanitizer\": \"%s\"}}\n", sanitizer_tag());
  std::printf("==============================================================\n");
}

inline void print_rows(const std::vector<perf::Row>& rows) {
  std::printf("%s", perf::format_table(rows).c_str());
}

/// Print which simulation engine a machine is running on.  Every bench and
/// example calls this so the QCDOC_SIM_THREADS knob is visible in output;
/// simulated results are bit-identical regardless, only wall clock changes.
inline void print_engine(machine::Machine& m) {
  std::printf("%s\n", perf::format_engine_report(m.engine().report()).c_str());
}

}  // namespace qcdoc::bench
