// Shared helpers for the experiment benches: every bench prints a
// paper-vs-measured table for its experiment id from DESIGN.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "perf/report.h"

namespace qcdoc::bench {

inline void print_header(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", claim);
  std::printf("==============================================================\n");
}

inline void print_rows(const std::vector<perf::Row>& rows) {
  std::printf("%s", perf::format_table(rows).c_str());
}

}  // namespace qcdoc::bench
