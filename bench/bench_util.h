// Shared helpers for the experiment benches: every bench prints a
// paper-vs-measured table for its experiment id from DESIGN.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "perf/report.h"

namespace qcdoc::bench {

// Which sanitizers this binary was built with (set by the top-level
// CMakeLists from QCDOC_SANITIZE / QCDOC_TSAN / QCDOC_UBSAN).
#ifndef QCDOC_SANITIZER_TAG
#define QCDOC_SANITIZER_TAG "none"
#endif

inline const char* sanitizer_tag() { return QCDOC_SANITIZER_TAG; }

inline void print_header(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", claim);
  // Machine-readable build provenance: numbers measured under a sanitizer
  // are an order of magnitude off and must never be quoted as real perf.
  std::printf("{\"bench_env\": {\"sanitizer\": \"%s\"}}\n", sanitizer_tag());
  std::printf("==============================================================\n");
}

inline void print_rows(const std::vector<perf::Row>& rows) {
  std::printf("%s", perf::format_table(rows).c_str());
}

/// Print which simulation engine a machine is running on.  Every bench and
/// example calls this so the QCDOC_SIM_THREADS knob is visible in output;
/// simulated results are bit-identical regardless, only wall clock changes.
inline void print_engine(machine::Machine& m) {
  std::printf("%s\n", perf::format_engine_report(m.engine().report()).c_str());
}

// --- Machine-readable engine-bench output ----------------------------------

/// One measured engine run for BENCH_*.json.
struct EngineBenchRun {
  std::string engine;        ///< "serial" or "parallel"
  int threads = 1;
  u64 events = 0;
  double wall_seconds = 0;
  u64 digest = 0;
  u64 heap_blocks_steady = 0;  ///< action-pool growth during the measured
                               ///< steady-state phase (gate: must be 0)
};

/// Write the engine-scaling measurements as a small JSON document so CI and
/// EXPERIMENTS.md tooling can consume them without scraping stdout.  The
/// `bench_env` tag travels with the numbers: figures measured under a
/// sanitizer are an order of magnitude off and must never be quoted as real
/// performance.
inline void write_engine_bench_json(const char* path,
                                    const std::vector<EngineBenchRun>& runs,
                                    double speedup, bool deterministic) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"engine\",\n");
  std::fprintf(f, "  \"bench_env\": {\"sanitizer\": \"%s\"},\n",
               sanitizer_tag());
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const EngineBenchRun& r = runs[i];
    const double rate =
        r.wall_seconds > 0 ? static_cast<double>(r.events) / r.wall_seconds
                           : 0.0;
    std::fprintf(f,
                 "    {\"engine\": \"%s\", \"threads\": %d, "
                 "\"events\": %llu, \"wall_seconds\": %.3f, "
                 "\"events_per_sec\": %.0f, \"digest\": \"%016llx\", "
                 "\"heap_blocks_steady\": %llu}%s\n",
                 r.engine.c_str(), r.threads,
                 static_cast<unsigned long long>(r.events), r.wall_seconds,
                 rate, static_cast<unsigned long long>(r.digest),
                 static_cast<unsigned long long>(r.heap_blocks_steady),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup\": %.3f,\n", speedup);
  std::fprintf(f, "  \"deterministic\": %s\n", deterministic ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace qcdoc::bench
