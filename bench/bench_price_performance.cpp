// E6: machine cost and price/performance.
//
// Paper Section 4: the 4096-node machine's purchase orders total
// $1,610,442 ($1,105,692.67 daughterboards + $180,404.88 motherboards +
// $187,296 cabinets + $71,040 cables + $64,300 host system); prorated R&D
// adds $99,159 for $1,709,601.  At 45% sustained efficiency this is
// $1.29/Mflops at 360 MHz, $1.10 at 420 MHz and $1.03 at 450 MHz; volume
// discounts should take the 12,288-node machines "very close to our
// targeted $1 per sustained Megaflops".
#include "bench_util.h"
#include "lattice/cg.h"
#include "lattice/rig.h"
#include "lattice/wilson.h"
#include "machine/cost.h"
#include "machine/qcdsp.h"

using namespace qcdoc;
using namespace qcdoc::machine;

namespace {

/// Measured sustained efficiency at a given clock (Wilson CG, 4^4 local).
double measured_efficiency(double clock_hz) {
  MachineConfig cfg;
  cfg.clock_hz = clock_hz;
  lattice::SolverRig rig({2, 2, 2, 2, 1, 1}, {8, 8, 8, 8}, cfg);
  lattice::GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(7);
  gauge.randomize_near_unit(rng, 0.15);
  lattice::WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                          lattice::WilsonParams{});
  lattice::DistField x = op.make_field("x");
  lattice::DistField b = op.make_field("b");
  x.zero();
  rig.fill_source(b);
  lattice::CgParams params;
  params.fixed_iterations = 5;
  return perf::cg_efficiency(*rig.m, lattice::cg_solve(op, x, b, params));
}

}  // namespace

int main() {
  bench::print_header(
      "E6: bench_price_performance -- 4096-node machine cost table",
      "$1,610,442 parts / $1,709,601 with R&D; $1.29 / $1.10 / $1.03 per "
      "sustained Mflops at 360/420/450 MHz (45% efficiency)");

  const CostModel cost;
  const auto plan = plan_for_nodes(4096, 1e9);

  std::vector<perf::Row> rows = {
      {"E6", "daughterboards", 1105692.67,
       plan.daughterboards * cost.daughterboard_usd, "USD"},
      {"E6", "motherboards", 180404.88,
       plan.motherboards * cost.motherboard_usd, "USD"},
      {"E6", "cabinets", 187296.0, plan.racks * cost.rack_usd, "USD"},
      {"E6", "cables", 71040.0, plan.cables * cost.cable_usd, "USD"},
      {"E6", "host + Ethernet + disks", 64300.0, cost.host_system_usd, "USD"},
      {"E6", "machine total", 1610442.0, cost.parts_cost(plan), "USD"},
      {"E6", "with prorated R&D", 1709601.0, cost.total_cost(plan), "USD"},
  };
  bench::print_rows(rows);

  std::printf("\nprice/performance at the paper's 45%% efficiency:\n");
  std::vector<perf::Row> pp = {
      {"E6", "360 MHz", 1.29, cost.usd_per_sustained_mflops(plan, 360e6, 0.45),
       "USD/Mflops"},
      {"E6", "420 MHz", 1.10, cost.usd_per_sustained_mflops(plan, 420e6, 0.45),
       "USD/Mflops"},
      {"E6", "450 MHz", 1.03, cost.usd_per_sustained_mflops(plan, 450e6, 0.45),
       "USD/Mflops"},
  };
  bench::print_rows(pp);

  std::printf("\nwith this reproduction's own measured CG efficiencies:\n");
  std::vector<perf::Row> meas;
  for (double clock : {360e6, 420e6, 450e6}) {
    const double eff = measured_efficiency(clock);
    char qty[64];
    std::snprintf(qty, sizeof(qty), "%d MHz (wilson, %.1f%% eff)",
                  static_cast<int>(clock / 1e6), 100 * eff);
    meas.push_back({"E6", qty, 0,
                    cost.usd_per_sustained_mflops(plan, clock, eff),
                    "USD/Mflops"});
  }
  bench::print_rows(meas);

  const auto big = plan_for_nodes(12288, 1e9);
  std::printf("\n12,288-node machine with volume discount:\n");
  std::vector<perf::Row> big_rows = {
      {"E6", "12288 nodes @450 MHz", 1.00,
       cost.usd_per_sustained_mflops(big, 450e6, 0.45),
       "USD/Mflops (target $1)"},
  };
  bench::print_rows(big_rows);

  // Generational comparison against QCDSP (paper Section 1): "$10/sustained
  // Megaflops and won the Gordon Bell prize in price/performance at SC 98."
  const QcdspModel qcdsp;
  std::printf("\nversus the predecessor QCDSP:\n");
  std::vector<perf::Row> gen = {
      {"E6", "QCDSP price/perf", 10.0, qcdsp.usd_per_sustained_mflops,
       "USD/Mflops"},
      {"E6", "QCDSP RBRC peak", 0.61, qcdsp.rbrc_peak_tflops(), "Tflops"},
      {"E6", "QCDOC improvement @450", 10.0,
       qcdsp.qcdoc_improvement(cost, plan, 450e6, 0.45), "x"},
  };
  bench::print_rows(gen);
  return 0;
}
