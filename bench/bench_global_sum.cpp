// E4: global sums through the SCU global mode.
//
// Paper Section 2.2: a 4-D global sum hops through Nx+Ny+Nz+Nt-4 nodes
// dimension by dimension; "using the doubled functionality of the SCUs
// global modes, the sum can be reduced to requiring Nx/2+Ny/2+Nz/2+Nt/2
// hops"; cut-through forwarding passes a word on after only 8 bits,
// "markedly reducing the latency" relative to store-and-forward.
#include "bench_util.h"
#include "comms/comms.h"
#include "comms/global_sum.h"
#include "lattice/rig.h"

using namespace qcdoc;

int main() {
  bench::print_header(
      "E4: bench_global_sum -- dimension-wise global sum on a 4x4x4x4 "
      "partition",
      "naive: sum(Ni-1)=12 hops; doubled SCU global mode: sum(Ni/2)=8 hops; "
      "8-bit cut-through beats 72-bit store-and-forward per hop");

  lattice::SolverRig rig({4, 4, 4, 4, 1, 1}, {8, 8, 8, 8});
  auto& comm = *rig.comm;

  scu::GlobalOpTiming t = comm.global_timing();
  std::vector<double> ring(4, 1.0);

  const auto naive = scu::ring_allreduce(t, ring, false);
  const auto doubled = scu::ring_allreduce(t, ring, true);

  const Cycle sum_naive =
      comms::partition_global_sum_cycles(*rig.partition, t, false);
  const Cycle sum_doubled =
      comms::partition_global_sum_cycles(*rig.partition, t, true);

  scu::GlobalOpTiming sf = t;
  sf.cut_through = false;
  const Cycle bc_cut = scu::ring_broadcast(t, 16, false).completion_cycles;
  const Cycle bc_sf = scu::ring_broadcast(sf, 16, false).completion_cycles;

  const auto& hw = rig.m->hw();
  std::vector<perf::Row> rows = {
      {"E4", "hops naive (4 dims)", 12, 4.0 * naive.max_hops, "hops"},
      {"E4", "hops doubled (4 dims)", 8, 4.0 * doubled.max_hops, "hops"},
      {"E4", "4-D sum, naive", 0, hw.seconds(sum_naive) * 1e6, "us"},
      {"E4", "4-D sum, doubled", 0, hw.seconds(sum_doubled) * 1e6, "us"},
      {"E4", "16-ring bcast cut-through", 0, hw.seconds(bc_cut) * 1e6, "us"},
      {"E4", "16-ring bcast store&fwd", 0, hw.seconds(bc_sf) * 1e6, "us"},
      {"E4", "cut-through speedup", static_cast<double>(72) / 8,
       static_cast<double>(bc_sf - 30) / static_cast<double>(bc_cut - 30),
       "x (asymptotic 9x)"},
  };
  bench::print_rows(rows);

  // Functional check through the full machine: one double per node.
  std::vector<double> contrib(static_cast<std::size_t>(comm.num_nodes()));
  for (std::size_t i = 0; i < contrib.size(); ++i) {
    contrib[i] = 0.25 * static_cast<double>(i);
  }
  const auto result = comm.global_sum(contrib);
  double direct = 0;
  for (double v : contrib) direct += v;
  std::printf("\nfunctional 256-node sum: %.6f (direct %.6f), %llu cycles\n",
              result.value, direct,
              static_cast<unsigned long long>(result.cycles));
  return 0;
}
