// E13 (extension): solver ablation -- the software choices the hardware
// numbers depend on.
//
// The paper's efficiencies are CG-on-normal-equations figures; production
// codes of the era layered more tricks on the same hardware: even-odd
// preconditioning (staggered: one full-volume Dslash equivalent per
// iteration instead of two), BiCGStab (Wilson: no M^+ applications),
// multi-shift CG (all quark masses from one Krylov sequence), and
// mixed-precision reliable updates (sloppy single/half arithmetic with
// double residual replacement).  This bench measures them all
// time-to-solution on the simulated machine and writes BENCH_solver.json
// with the per-precision flop/byte ledger of every solve.
//
// The binary is itself a gate: it exits non-zero unless the mixed-half
// solver moves at least 1.5x fewer predicted bytes than all-double CG --
// the acceptance number behind the mixed-precision work.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "lattice/bicgstab.h"
#include "lattice/cg.h"
#include "lattice/eo_cg.h"
#include "lattice/mixed.h"
#include "lattice/multishift.h"
#include "lattice/rig.h"
#include "lattice/staggered.h"
#include "lattice/twisted_mass.h"
#include "lattice/wilson.h"

using namespace qcdoc;
using namespace qcdoc::lattice;

namespace {

struct SolveStats {
  const char* tag;
  int iterations;
  double ms;
  double residual;
  TrafficByPrecision traffic{};
};

template <typename Solve>
SolveStats time_solve(const char* tag, Solve solve) {
  SolverRig rig({2, 2, 1, 1, 1, 1}, {8, 8, 4, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(61);
  gauge.randomize_near_unit(rng, 0.1);
  const CgResult r = solve(rig, gauge);
  return SolveStats{tag, r.iterations, rig.m->seconds(r.cycles) * 1e3,
                    r.relative_residual, r.traffic};
}

CgParams tight() {
  CgParams p;
  p.tolerance = 1e-8;
  p.max_iterations = 800;
  return p;
}

MixedCgParams mixed_tight(Precision sloppy) {
  MixedCgParams p;
  p.tolerance = 1e-8;
  p.sloppy = sloppy;
  return p;
}

void write_solver_bench_json(const char* path,
                             const std::vector<SolveStats>& solves,
                             double mixed_half_byte_ratio, bool gate_ok) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"solver\",\n");
  std::fprintf(f, "  \"bench_env\": {\"sanitizer\": \"%s\"},\n",
               bench::sanitizer_tag());
  std::fprintf(f, "  \"solvers\": [\n");
  for (std::size_t i = 0; i < solves.size(); ++i) {
    const SolveStats& s = solves[i];
    std::fprintf(f,
                 "    {\"solver\": \"%s\", \"iterations\": %d, "
                 "\"machine_ms\": %.3f, \"residual\": %.3e,\n",
                 s.tag, s.iterations, s.ms, s.residual);
    std::fprintf(f, "     \"traffic\": {");
    for (int pi = 0; pi < kNumPrecisions; ++pi) {
      const PrecisionTraffic& p = s.traffic[static_cast<std::size_t>(pi)];
      std::fprintf(f,
                   "%s\"%s\": {\"flops\": %.0f, \"load_bytes\": %.0f, "
                   "\"store_bytes\": %.0f, \"edram_bytes\": %.0f, "
                   "\"ddr_bytes\": %.0f}",
                   pi == 0 ? "" : ", ",
                   precision_name(static_cast<Precision>(pi)), p.flops,
                   p.load_bytes, p.store_bytes, p.edram_bytes, p.ddr_bytes);
    }
    std::fprintf(f, "}}%s\n", i + 1 < solves.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"mixed_half_byte_ratio\": %.3f,\n",
               mixed_half_byte_ratio);
  std::fprintf(f, "  \"gate_byte_ratio_min\": 1.5,\n");
  std::fprintf(f, "  \"gate_ok\": %s\n", gate_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  bench::print_header(
      "E13: bench_solver_ablation -- CG vs eo-CG vs BiCGStab vs multishift "
      "vs mixed precision",
      "same machine, same physics: eo preconditioning halves the staggered "
      "work; BiCGStab avoids M^+ for Wilson; multishift amortizes one "
      "Krylov sequence over all masses; mixed half storage moves >= 1.5x "
      "fewer bytes than double CG");

  std::vector<SolveStats> solves;

  solves.push_back(time_solve("asqtad cg", [](SolverRig& rig, GaugeField& g) {
    AsqtadDirac op(rig.ops.get(), rig.geom.get(), &g,
                   AsqtadParams{.mass = 0.1});
    DistField x = op.make_field("x"), b = op.make_field("b");
    x.zero();
    rig.fill_source(b);
    return cg_solve(op, x, b, tight());
  }));
  solves.push_back(time_solve("asqtad eo-cg", [](SolverRig& rig,
                                                 GaugeField& g) {
    AsqtadDirac op(rig.ops.get(), rig.geom.get(), &g,
                   AsqtadParams{.mass = 0.1});
    DistField x = op.make_field("x"), b = op.make_field("b");
    x.zero();
    rig.fill_source(b);
    return asqtad_eo_solve(op, x, b, tight());
  }));
  solves.push_back(time_solve("wilson cg", [](SolverRig& rig, GaugeField& g) {
    WilsonDirac op(rig.ops.get(), rig.geom.get(), &g,
                   WilsonParams{.kappa = 0.12});
    DistField x = op.make_field("x"), b = op.make_field("b");
    x.zero();
    rig.fill_source(b);
    return cg_solve(op, x, b, tight());
  }));
  solves.push_back(time_solve("wilson bicgstab", [](SolverRig& rig,
                                                    GaugeField& g) {
    WilsonDirac op(rig.ops.get(), rig.geom.get(), &g,
                   WilsonParams{.kappa = 0.12});
    DistField x = op.make_field("x"), b = op.make_field("b");
    x.zero();
    rig.fill_source(b);
    return bicgstab_solve(op, x, b, tight());
  }));
  solves.push_back(time_solve("wilson eo-cg", [](SolverRig& rig,
                                                 GaugeField& g) {
    WilsonDirac op(rig.ops.get(), rig.geom.get(), &g,
                   WilsonParams{.kappa = 0.12});
    DistField x = op.make_field("x"), b = op.make_field("b");
    x.zero();
    rig.fill_source(b);
    return wilson_eo_solve(op, x, b, tight());
  }));
  solves.push_back(time_solve("wilson mixed-single", [](SolverRig& rig,
                                                        GaugeField& g) {
    WilsonDirac op(rig.ops.get(), rig.geom.get(), &g,
                   WilsonParams{.kappa = 0.12});
    WilsonDirac sloppy(rig.ops.get(), rig.geom.get(), &g,
                       WilsonParams{.kappa = 0.12,
                                    .precision = Precision::kSingle});
    DistField x = op.make_field("x"), b = op.make_field("b");
    x.zero();
    rig.fill_source(b);
    return mixed_cg_solve(op, sloppy, x, b,
                          mixed_tight(Precision::kSingle));
  }));
  solves.push_back(time_solve("wilson mixed-half", [](SolverRig& rig,
                                                      GaugeField& g) {
    WilsonDirac op(rig.ops.get(), rig.geom.get(), &g,
                   WilsonParams{.kappa = 0.12});
    WilsonDirac sloppy(rig.ops.get(), rig.geom.get(), &g,
                       WilsonParams{.kappa = 0.12,
                                    .precision = Precision::kHalf});
    DistField x = op.make_field("x"), b = op.make_field("b");
    x.zero();
    rig.fill_source(b);
    return mixed_cg_solve(op, sloppy, x, b, mixed_tight(Precision::kHalf));
  }));
  solves.push_back(time_solve("twisted cg", [](SolverRig& rig, GaugeField& g) {
    TwistedMassDirac op(rig.ops.get(), rig.geom.get(), &g,
                        TwistedMassParams{.kappa = 0.12, .mu = 0.05});
    DistField x = op.make_field("x"), b = op.make_field("b");
    x.zero();
    rig.fill_source(b);
    return cg_solve(op, x, b, tight());
  }));

  // Multi-shift: four quark masses from one Krylov sequence.  Reported
  // machine time covers all four systems; the per-shift cost of running
  // four separate CGs is what the "x amortized" row compares against.
  {
    SolverRig rig({2, 2, 1, 1, 1, 1}, {8, 8, 4, 4});
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    Rng rng(61);
    gauge.randomize_near_unit(rng, 0.1);
    WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                   WilsonParams{.kappa = 0.12});
    MultishiftParams mp;
    mp.shifts = {0.0, 0.05, 0.2, 0.5};
    mp.tolerance = 1e-8;
    mp.max_iterations = 800;
    std::vector<DistField> x;
    for (std::size_t i = 0; i < mp.shifts.size(); ++i) {
      x.push_back(op.make_field("x" + std::to_string(i)));
    }
    DistField b = op.make_field("b");
    rig.fill_source(b);
    const MultishiftResult mr = multishift_solve(op, x, b, mp);
    double worst = 0;
    for (const double r : mr.relative_residuals) {
      worst = std::max(worst, r);
    }
    solves.push_back(SolveStats{"wilson multishift x4", mr.iterations,
                                rig.m->seconds(mr.cycles) * 1e3, worst,
                                mr.traffic});
  }

  std::printf("%24s %10s %12s %14s %12s\n", "solver", "iters", "machine ms",
              "|r|/|b|", "Mbytes");
  for (const SolveStats& s : solves) {
    std::printf("%24s %10d %12.2f %14.1e %12.1f\n", s.tag, s.iterations, s.ms,
                s.residual, total_bytes(s.traffic) / 1e6);
  }

  const SolveStats& asqtad_plain = solves[0];
  const SolveStats& asqtad_eo = solves[1];
  const SolveStats& wilson_cg = solves[2];
  const SolveStats& wilson_bicg = solves[3];
  const SolveStats& wilson_eo = solves[4];
  const SolveStats& mixed_half = solves[6];
  const SolveStats& multishift = solves.back();

  std::printf("\nwilson cg (all double) traffic:\n%s",
              perf::format_traffic_report(wilson_cg.traffic).c_str());
  std::printf("\nwilson mixed-half traffic:\n%s",
              perf::format_traffic_report(mixed_half.traffic).c_str());

  const double half_ratio =
      total_bytes(wilson_cg.traffic) / total_bytes(mixed_half.traffic);
  // Four separate tight CGs would each cost ~wilson_cg; the shared Krylov
  // sequence pays one.
  const double shift_amortization = 4.0 * wilson_cg.ms / multishift.ms;

  std::vector<perf::Row> rows = {
      {"E13", "eo speedup (asqtad)", 1.5, asqtad_plain.ms / asqtad_eo.ms,
       "x (compute halves; faces not parity-packed)"},
      {"E13", "bicgstab speedup (wilson)", 1.0, wilson_cg.ms / wilson_bicg.ms,
       "x"},
      {"E13", "eo speedup (wilson)", 1.5, wilson_cg.ms / wilson_eo.ms, "x"},
      {"E13", "multishift amortization", 4.0, shift_amortization,
       "x (4 masses, 1 Krylov sequence)"},
      {"E13", "mixed-half byte ratio", 1.5, half_ratio,
       "x fewer bytes than double cg (gate: >= 1.5)"},
  };
  bench::print_rows(rows);

  const bool gate_ok = half_ratio >= 1.5;
  write_solver_bench_json("BENCH_solver.json", solves, half_ratio, gate_ok);
  if (!gate_ok) {
    std::fprintf(stderr,
                 "FAIL: mixed-half moved only %.2fx fewer predicted bytes "
                 "than double CG (gate: >= 1.5)\n",
                 half_ratio);
    return 1;
  }
  return 0;
}
