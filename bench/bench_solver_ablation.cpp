// E13 (extension): solver ablation -- the software choices the hardware
// numbers depend on.
//
// The paper's efficiencies are CG-on-normal-equations figures; production
// codes of the era layered two more tricks on the same hardware: even-odd
// preconditioning (staggered: one full-volume Dslash equivalent per
// iteration instead of two) and BiCGStab (Wilson: no M^+ applications).
// This bench measures all three time-to-solution on the simulated machine.
#include "bench_util.h"
#include "lattice/bicgstab.h"
#include "lattice/cg.h"
#include "lattice/eo_cg.h"
#include "lattice/rig.h"
#include "lattice/staggered.h"
#include "lattice/wilson.h"

using namespace qcdoc;
using namespace qcdoc::lattice;

namespace {

struct SolveStats {
  int iterations;
  double ms;
  double residual;
};

template <typename Solve>
SolveStats time_solve(const char* tag, Solve solve) {
  (void)tag;
  SolverRig rig({2, 2, 1, 1, 1, 1}, {8, 8, 4, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(61);
  gauge.randomize_near_unit(rng, 0.1);
  const CgResult r = solve(rig, gauge);
  return SolveStats{r.iterations, rig.m->seconds(r.cycles) * 1e3,
                    r.relative_residual};
}

CgParams tight() {
  CgParams p;
  p.tolerance = 1e-8;
  p.max_iterations = 800;
  return p;
}

}  // namespace

int main() {
  bench::print_header(
      "E13: bench_solver_ablation -- CG vs even-odd CG vs BiCGStab",
      "same machine, same physics, three solver strategies: eo "
      "preconditioning halves the staggered work; BiCGStab avoids M^+ for "
      "Wilson");

  const auto asqtad_plain = time_solve("asqtad cg", [](SolverRig& rig,
                                                       GaugeField& g) {
    AsqtadDirac op(rig.ops.get(), rig.geom.get(), &g, AsqtadParams{.mass = 0.1});
    DistField x = op.make_field("x"), b = op.make_field("b");
    x.zero();
    rig.fill_source(b);
    return cg_solve(op, x, b, tight());
  });
  const auto asqtad_eo = time_solve("asqtad eo", [](SolverRig& rig,
                                                    GaugeField& g) {
    AsqtadDirac op(rig.ops.get(), rig.geom.get(), &g, AsqtadParams{.mass = 0.1});
    DistField x = op.make_field("x"), b = op.make_field("b");
    x.zero();
    rig.fill_source(b);
    return asqtad_eo_solve(op, x, b, tight());
  });
  const auto wilson_cg = time_solve("wilson cg", [](SolverRig& rig,
                                                    GaugeField& g) {
    WilsonDirac op(rig.ops.get(), rig.geom.get(), &g,
                   WilsonParams{.kappa = 0.12});
    DistField x = op.make_field("x"), b = op.make_field("b");
    x.zero();
    rig.fill_source(b);
    return cg_solve(op, x, b, tight());
  });
  const auto wilson_bicg = time_solve("wilson bicgstab", [](SolverRig& rig,
                                                            GaugeField& g) {
    WilsonDirac op(rig.ops.get(), rig.geom.get(), &g,
                   WilsonParams{.kappa = 0.12});
    DistField x = op.make_field("x"), b = op.make_field("b");
    x.zero();
    rig.fill_source(b);
    return bicgstab_solve(op, x, b, tight());
  });
  const auto wilson_eo = time_solve("wilson eo-cg", [](SolverRig& rig,
                                                       GaugeField& g) {
    WilsonDirac op(rig.ops.get(), rig.geom.get(), &g,
                   WilsonParams{.kappa = 0.12});
    DistField x = op.make_field("x"), b = op.make_field("b");
    x.zero();
    rig.fill_source(b);
    return wilson_eo_solve(op, x, b, tight());
  });

  std::printf("%24s %10s %12s %14s\n", "solver", "iters", "machine ms",
              "|r|/|b|");
  std::printf("%24s %10d %12.2f %14.1e\n", "asqtad cg (M^+M)",
              asqtad_plain.iterations, asqtad_plain.ms, asqtad_plain.residual);
  std::printf("%24s %10d %12.2f %14.1e\n", "asqtad even-odd cg",
              asqtad_eo.iterations, asqtad_eo.ms, asqtad_eo.residual);
  std::printf("%24s %10d %12.2f %14.1e\n", "wilson cg (M^+M)",
              wilson_cg.iterations, wilson_cg.ms, wilson_cg.residual);
  std::printf("%24s %10d %12.2f %14.1e\n", "wilson bicgstab",
              wilson_bicg.iterations, wilson_bicg.ms, wilson_bicg.residual);
  std::printf("%24s %10d %12.2f %14.1e\n", "wilson even-odd cg",
              wilson_eo.iterations, wilson_eo.ms, wilson_eo.residual);

  std::vector<perf::Row> rows = {
      {"E13", "eo speedup (asqtad)", 1.5, asqtad_plain.ms / asqtad_eo.ms,
       "x (compute halves; faces not parity-packed)"},
      {"E13", "bicgstab speedup (wilson)", 1.0, wilson_cg.ms / wilson_bicg.ms,
       "x"},
      {"E13", "eo speedup (wilson)", 1.5, wilson_cg.ms / wilson_eo.ms, "x"},
  };
  bench::print_rows(rows);
  return 0;
}
