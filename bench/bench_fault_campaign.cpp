// E14: fault campaigns, health monitoring cost and audit overhead.
//
// Paper Section 4: bring-up lives with marginal links and dead boards; the
// Ethernet/JTAG controller is the path "to monitor and probe a failing
// node".  This bench measures what that machinery costs when nothing is
// wrong (the common case): the cycle price of a whole-machine health sweep,
// a randomized fault soak exercising detection and retraining, and the
// overhead the incremental checksum audit adds to a clean CG solve.
#include "bench_util.h"
#include "fault/checksum_audit.h"
#include "fault/fault.h"
#include "host/qdaemon.h"
#include "lattice/cg.h"
#include "lattice/rig.h"
#include "lattice/wilson.h"
#include "memsys/scrub.h"

using namespace qcdoc;

namespace {

void sweep_cost() {
  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 2, 2, 2, 2, 2};  // 64 nodes
  machine::Machine m(cfg);
  host::Qdaemon daemon(&m);
  daemon.boot();
  const Cycle before = m.engine().now();
  daemon.health().sweep();
  const Cycle cost = m.engine().now() - before;
  std::printf("health sweep, %d nodes: %llu cycles = %.1f us (%.2f us/node)\n",
              m.num_nodes(), static_cast<unsigned long long>(cost),
              m.microseconds(cost), m.microseconds(cost) / m.num_nodes());
}

void soak() {
  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 2, 2, 2, 2, 2};
  machine::Machine m(cfg);
  host::Qdaemon daemon(&m);
  daemon.boot();
  host::HealthConfig hc;
  hc.sweep_period_cycles = 1 << 21;  // ~4 ms at 500 MHz, well above sweep cost
  host::HealthMonitor& monitor = daemon.health(hc);

  sim::StatSet fstats;
  fault::FaultInjector injector(&m.mesh(), &fstats);
  const Cycle start = m.engine().now();
  const Cycle horizon = 8 * hc.sweep_period_cycles;
  const auto plan = fault::FaultPlan::random_campaign(
      /*seed=*/7, cfg.shape, /*n=*/12, start, horizon);
  injector.arm(plan);
  // The SCU watchdog rides along in its bounded-affinity sampling mode:
  // per-node sampler events run inside parallel windows, so monitoring
  // does not serialize the soak.
  daemon.watchdog().arm(horizon);
  monitor.monitor_for(horizon);

  std::printf("soak: %llu faults injected over %llu cycles, %llu sweeps, "
              "%llu watchdog checks\n",
              static_cast<unsigned long long>(injector.injected()),
              static_cast<unsigned long long>(horizon),
              static_cast<unsigned long long>(monitor.sweeps()),
              static_cast<unsigned long long>(daemon.watchdog().checks()));
  bench::print_engine(m);
  for (const char* key : {"fault.ber_spike", "fault.link_death",
                          "fault.ack_drop_burst", "fault.data_corruption"}) {
    std::printf("  %-22s %llu\n", key,
                static_cast<unsigned long long>(fstats.get(key)));
  }
  std::printf("  retrains %llu, nodes quarantined %zu of %d\n",
              static_cast<unsigned long long>(
                  monitor.stats().get("health.retrains")),
              daemon.quarantined_nodes().size(), m.num_nodes());
}

struct CgPoint {
  int iterations;
  u64 cycles;
  int restarts;
};

CgPoint solve(bool audited) {
  lattice::SolverRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
  lattice::GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(41);
  gauge.randomize_near_unit(rng, 0.1);
  lattice::WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                          lattice::WilsonParams{.kappa = 0.12});
  lattice::DistField x = op.make_field("x");
  lattice::DistField b = op.make_field("b");
  x.zero();
  rig.fill_source(b);
  lattice::CgParams params;
  params.tolerance = 1e-8;
  params.max_iterations = 400;
  lattice::CgResult r;
  if (audited) {
    fault::ChecksumAuditor auditor(&rig.machine().mesh());
    lattice::CgAuditParams audit;
    audit.clean = [&] { return auditor.clean_since_last(); };
    audit.interval = 5;
    r = lattice::cg_solve_audited(op, x, b, params, audit);
  } else {
    r = lattice::cg_solve(op, x, b, params);
  }
  return CgPoint{r.iterations, static_cast<u64>(r.cycles), r.restarts};
}

// --- memory-fault class: upset rate vs CG cost and scrub overhead ----------

struct MemPoint {
  int planned = 0;
  int iterations = 0;
  u64 cycles = 0;
  int restarts = 0;
  u64 mem_checks = 0;
  memsys::EccCounters ecc;
};

// One audited CG solve under `planned` entropy-addressed memory upsets
// (a small fraction uncorrectable), with the background scrubber running
// whenever upsets are planned.  Memory is shrunk so the scrub cursor laps
// the whole address space several times within the solve.
MemPoint mem_solve(int planned) {
  machine::MachineConfig cfg;
  cfg.mem.edram_words = 1 << 15;
  cfg.mem.ddr_words = 1 << 16;
  lattice::SolverRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4}, cfg);
  machine::Machine& m = rig.machine();
  lattice::GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(41);
  gauge.randomize_near_unit(rng, 0.1);
  lattice::WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                          lattice::WilsonParams{.kappa = 0.12});
  lattice::DistField x = op.make_field("x");
  lattice::DistField b = op.make_field("b");
  x.zero();
  rig.fill_source(b);

  fault::FaultInjector injector(&m.mesh(), nullptr);
  fault::MemCheckAuditor mem_auditor(&m.mesh());
  if (planned > 0) {
    memsys::ScrubConfig scrub;
    scrub.rows_per_period = 1024;  // full lap every ~18 bursts, 12.5% budget
    m.start_memory_scrubbers(scrub);
    injector.arm(fault::FaultPlan::sustained_mem_upsets(
        /*seed=*/17, m.config().shape, planned, m.engine().now(),
        /*horizon=*/1 << 20, /*uncorrectable_fraction=*/0.05));
  }

  lattice::CgParams params;
  params.tolerance = 1e-8;
  params.max_iterations = 400;
  lattice::CgAuditParams audit;
  audit.mem_clean = [&] { return mem_auditor.clean_since_last(); };
  audit.interval = 5;
  const lattice::CgResult r = lattice::cg_solve_audited(op, x, b, params, audit);

  MemPoint p;
  p.planned = planned;
  p.iterations = r.iterations;
  p.cycles = static_cast<u64>(r.cycles);
  p.restarts = r.restarts;
  p.mem_checks = r.mem_checks;
  p.ecc = m.mesh().total_ecc();
  std::printf("%s\n", perf::format_mem_resilience_report(m).c_str());
  return p;
}

void mem_fault_class(std::vector<perf::Row>& rows) {
  std::printf("memory-fault class: upset count vs audited-CG cost\n");
  std::vector<MemPoint> points;
  for (const int planned : {0, 8, 32, 128}) {
    points.push_back(mem_solve(planned));
  }
  // scrub_cycles is summed over every node; divide by machine size to get
  // the per-node fraction of the solve each scrubber spent sweeping.
  const double nodes = 4.0;
  for (const MemPoint& p : points) {
    const double scrub_frac =
        p.cycles > 0
            ? static_cast<double>(p.ecc.scrub_cycles) / (nodes * p.cycles)
            : 0.0;
    std::printf(
        "{\"mem_fault_point\": {\"planned\": %d, \"upsets\": %llu, "
        "\"corrected\": %llu, \"uncorrectable\": %llu, \"mem_checks\": %llu, "
        "\"restarts\": %d, \"iterations\": %d, \"cycles\": %llu, "
        "\"scrub_rows\": %llu, \"scrub_occupancy\": %.6f}}\n",
        p.planned, static_cast<unsigned long long>(p.ecc.upsets),
        static_cast<unsigned long long>(p.ecc.corrected),
        static_cast<unsigned long long>(p.ecc.uncorrectable),
        static_cast<unsigned long long>(p.mem_checks), p.restarts,
        p.iterations, static_cast<unsigned long long>(p.cycles),
        static_cast<unsigned long long>(p.ecc.scrub_rows), scrub_frac);
  }
  const MemPoint& clean = points.front();
  const MemPoint& worst = points.back();
  const double cycle_overhead =
      clean.cycles > 0
          ? 100.0 * (static_cast<double>(worst.cycles) / clean.cycles - 1.0)
          : 0.0;
  rows.push_back({"E14", "CG cycle overhead at 128 upsets", 0, cycle_overhead,
                  "% vs clean"});
  rows.push_back({"E14", "machine-check rollbacks at 128 upsets", 0,
                  static_cast<double>(worst.restarts), "restarts"});
  rows.push_back({"E14", "scrub occupancy at 128 upsets", 0,
                  worst.cycles > 0 ? 100.0 *
                                         static_cast<double>(
                                             worst.ecc.scrub_cycles) /
                                         (nodes * worst.cycles)
                                   : 0.0,
                  "% of node cycles"});
}

}  // namespace

int main() {
  bench::print_header(
      "E14: bench_fault_campaign -- health monitoring and audit overhead",
      "Ethernet/JTAG monitors and probes failing nodes; link checksums "
      "confirm no erroneous data was exchanged");

  sweep_cost();
  std::printf("\n");
  soak();
  std::printf("\n");

  const CgPoint plain = solve(false);
  const CgPoint audited = solve(true);
  const double overhead =
      100.0 * (static_cast<double>(audited.cycles) / plain.cycles - 1.0);
  std::printf("CG without faults: plain %d iters / %llu cycles, audited %d "
              "iters / %llu cycles\n",
              plain.iterations, static_cast<unsigned long long>(plain.cycles),
              audited.iterations,
              static_cast<unsigned long long>(audited.cycles));

  std::vector<perf::Row> rows = {
      {"E14", "audited-CG machine-cycle overhead", 0, overhead, "% vs plain"},
      {"E14", "spurious restarts without faults", 0,
       static_cast<double>(audited.restarts), "restarts"},
  };
  std::printf("\n");
  mem_fault_class(rows);
  bench::print_rows(rows);
  return 0;
}
