// E14: fault campaigns, health monitoring cost and audit overhead.
//
// Paper Section 4: bring-up lives with marginal links and dead boards; the
// Ethernet/JTAG controller is the path "to monitor and probe a failing
// node".  This bench measures what that machinery costs when nothing is
// wrong (the common case): the cycle price of a whole-machine health sweep,
// a randomized fault soak exercising detection and retraining, and the
// overhead the incremental checksum audit adds to a clean CG solve.
#include <bit>
#include <chrono>
#include <filesystem>
#include <optional>

#include "bench_util.h"
#include "fault/checksum_audit.h"
#include "fault/fault.h"
#include "host/qdaemon.h"
#include "lattice/cg.h"
#include "lattice/rig.h"
#include "lattice/wilson.h"
#include "memsys/scrub.h"
#include "snapshot/machine_state.h"
#include "snapshot/store.h"

using namespace qcdoc;

namespace {

void sweep_cost() {
  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 2, 2, 2, 2, 2};  // 64 nodes
  machine::Machine m(cfg);
  host::Qdaemon daemon(&m);
  daemon.boot();
  const Cycle before = m.engine().now();
  daemon.health().sweep();
  const Cycle cost = m.engine().now() - before;
  std::printf("health sweep, %d nodes: %llu cycles = %.1f us (%.2f us/node)\n",
              m.num_nodes(), static_cast<unsigned long long>(cost),
              m.microseconds(cost), m.microseconds(cost) / m.num_nodes());
}

void soak() {
  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 2, 2, 2, 2, 2};
  machine::Machine m(cfg);
  host::Qdaemon daemon(&m);
  daemon.boot();
  host::HealthConfig hc;
  hc.sweep_period_cycles = 1 << 21;  // ~4 ms at 500 MHz, well above sweep cost
  host::HealthMonitor& monitor = daemon.health(hc);

  sim::StatSet fstats;
  fault::FaultInjector injector(&m.mesh(), &fstats);
  const Cycle start = m.engine().now();
  const Cycle horizon = 8 * hc.sweep_period_cycles;
  const auto plan = fault::FaultPlan::random_campaign(
      /*seed=*/7, cfg.shape, /*n=*/12, start, horizon);
  injector.arm(plan);
  // The SCU watchdog rides along in its bounded-affinity sampling mode:
  // per-node sampler events run inside parallel windows, so monitoring
  // does not serialize the soak.
  daemon.watchdog().arm(horizon);
  monitor.monitor_for(horizon);

  std::printf("soak: %llu faults injected over %llu cycles, %llu sweeps, "
              "%llu watchdog checks\n",
              static_cast<unsigned long long>(injector.injected()),
              static_cast<unsigned long long>(horizon),
              static_cast<unsigned long long>(monitor.sweeps()),
              static_cast<unsigned long long>(daemon.watchdog().checks()));
  bench::print_engine(m);
  for (const char* key : {"fault.ber_spike", "fault.link_death",
                          "fault.ack_drop_burst", "fault.data_corruption"}) {
    std::printf("  %-22s %llu\n", key,
                static_cast<unsigned long long>(fstats.get(key)));
  }
  std::printf("  retrains %llu, nodes quarantined %zu of %d\n",
              static_cast<unsigned long long>(
                  monitor.stats().get("health.retrains")),
              daemon.quarantined_nodes().size(), m.num_nodes());
}

struct CgPoint {
  int iterations;
  u64 cycles;
  int restarts;
};

CgPoint solve(bool audited) {
  lattice::SolverRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
  lattice::GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(41);
  gauge.randomize_near_unit(rng, 0.1);
  lattice::WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                          lattice::WilsonParams{.kappa = 0.12});
  lattice::DistField x = op.make_field("x");
  lattice::DistField b = op.make_field("b");
  x.zero();
  rig.fill_source(b);
  lattice::CgParams params;
  params.tolerance = 1e-8;
  params.max_iterations = 400;
  lattice::CgResult r;
  if (audited) {
    fault::ChecksumAuditor auditor(&rig.machine().mesh());
    lattice::CgAuditParams audit;
    audit.clean = [&] { return auditor.clean_since_last(); };
    audit.interval = 5;
    r = lattice::cg_solve_audited(op, x, b, params, audit);
  } else {
    r = lattice::cg_solve(op, x, b, params);
  }
  return CgPoint{r.iterations, static_cast<u64>(r.cycles), r.restarts};
}

// --- memory-fault class: upset rate vs CG cost and scrub overhead ----------

struct MemPoint {
  int planned = 0;
  int iterations = 0;
  u64 cycles = 0;
  int restarts = 0;
  u64 mem_checks = 0;
  memsys::EccCounters ecc;
};

// One audited CG solve under `planned` entropy-addressed memory upsets
// (a small fraction uncorrectable), with the background scrubber running
// whenever upsets are planned.  Memory is shrunk so the scrub cursor laps
// the whole address space several times within the solve.
MemPoint mem_solve(int planned) {
  machine::MachineConfig cfg;
  cfg.mem.edram_words = 1 << 15;
  cfg.mem.ddr_words = 1 << 16;
  lattice::SolverRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4}, cfg);
  machine::Machine& m = rig.machine();
  lattice::GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(41);
  gauge.randomize_near_unit(rng, 0.1);
  lattice::WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                          lattice::WilsonParams{.kappa = 0.12});
  lattice::DistField x = op.make_field("x");
  lattice::DistField b = op.make_field("b");
  x.zero();
  rig.fill_source(b);

  fault::FaultInjector injector(&m.mesh(), nullptr);
  fault::MemCheckAuditor mem_auditor(&m.mesh());
  if (planned > 0) {
    memsys::ScrubConfig scrub;
    scrub.rows_per_period = 1024;  // full lap every ~18 bursts, 12.5% budget
    m.start_memory_scrubbers(scrub);
    injector.arm(fault::FaultPlan::sustained_mem_upsets(
        /*seed=*/17, m.config().shape, planned, m.engine().now(),
        /*horizon=*/1 << 20, /*uncorrectable_fraction=*/0.05));
  }

  lattice::CgParams params;
  params.tolerance = 1e-8;
  params.max_iterations = 400;
  lattice::CgAuditParams audit;
  audit.mem_clean = [&] { return mem_auditor.clean_since_last(); };
  audit.interval = 5;
  const lattice::CgResult r = lattice::cg_solve_audited(op, x, b, params, audit);

  MemPoint p;
  p.planned = planned;
  p.iterations = r.iterations;
  p.cycles = static_cast<u64>(r.cycles);
  p.restarts = r.restarts;
  p.mem_checks = r.mem_checks;
  p.ecc = m.mesh().total_ecc();
  std::printf("%s\n", perf::format_mem_resilience_report(m).c_str());
  return p;
}

void mem_fault_class(std::vector<perf::Row>& rows) {
  std::printf("memory-fault class: upset count vs audited-CG cost\n");
  std::vector<MemPoint> points;
  for (const int planned : {0, 8, 32, 128}) {
    points.push_back(mem_solve(planned));
  }
  // scrub_cycles is summed over every node; divide by machine size to get
  // the per-node fraction of the solve each scrubber spent sweeping.
  const double nodes = 4.0;
  for (const MemPoint& p : points) {
    const double scrub_frac =
        p.cycles > 0
            ? static_cast<double>(p.ecc.scrub_cycles) / (nodes * p.cycles)
            : 0.0;
    std::printf(
        "{\"mem_fault_point\": {\"planned\": %d, \"upsets\": %llu, "
        "\"corrected\": %llu, \"uncorrectable\": %llu, \"mem_checks\": %llu, "
        "\"restarts\": %d, \"iterations\": %d, \"cycles\": %llu, "
        "\"scrub_rows\": %llu, \"scrub_occupancy\": %.6f}}\n",
        p.planned, static_cast<unsigned long long>(p.ecc.upsets),
        static_cast<unsigned long long>(p.ecc.corrected),
        static_cast<unsigned long long>(p.ecc.uncorrectable),
        static_cast<unsigned long long>(p.mem_checks), p.restarts,
        p.iterations, static_cast<unsigned long long>(p.cycles),
        static_cast<unsigned long long>(p.ecc.scrub_rows), scrub_frac);
  }
  const MemPoint& clean = points.front();
  const MemPoint& worst = points.back();
  const double cycle_overhead =
      clean.cycles > 0
          ? 100.0 * (static_cast<double>(worst.cycles) / clean.cycles - 1.0)
          : 0.0;
  rows.push_back({"E14", "CG cycle overhead at 128 upsets", 0, cycle_overhead,
                  "% vs clean"});
  rows.push_back({"E14", "machine-check rollbacks at 128 upsets", 0,
                  static_cast<double>(worst.restarts), "restarts"});
  rows.push_back({"E14", "scrub occupancy at 128 upsets", 0,
                  worst.cycles > 0 ? 100.0 *
                                         static_cast<double>(
                                             worst.ecc.scrub_cycles) /
                                         (nodes * worst.cycles)
                                   : 0.0,
                  "% of node cycles"});
}

// --- checkpoint class: cadence, size, write latency and restart recovery ---

u64 field_fnv(const lattice::DistField& f) {
  u64 h = sim::detail::kFnvOffset;
  for (int r = 0; r < f.ranks(); ++r) {
    for (const double v : f.data(r)) {
      h = sim::detail::fnv1a(h, std::bit_cast<u64>(v));
    }
  }
  return h;
}

void encode_solver(const lattice::CgCheckpoint& ck, snapshot::ByteSink* sink) {
  sink->put_u32(static_cast<u32>(ck.iterations));
  sink->put_double(ck.rsq);
  sink->put_double(ck.rhs_norm2);
  sink->put_u32(static_cast<u32>(ck.restarts));
  sink->put_u64(ck.audits);
  sink->put_u64(ck.audit_failures);
  sink->put_u64(ck.mem_checks);
}

snapshot::Status decode_solver(const snapshot::SnapshotFile& file,
                               lattice::CgCheckpoint* ck) {
  std::optional<snapshot::ByteSource> src;
  if (snapshot::Status s = file.open(snapshot::kSecSolver, &src); !s) return s;
  u32 iterations = 0, restarts = 0;
  if (snapshot::Status s = src->get_u32(&iterations); !s) return s;
  if (snapshot::Status s = src->get_double(&ck->rsq); !s) return s;
  if (snapshot::Status s = src->get_double(&ck->rhs_norm2); !s) return s;
  if (snapshot::Status s = src->get_u32(&restarts); !s) return s;
  if (snapshot::Status s = src->get_u64(&ck->audits); !s) return s;
  if (snapshot::Status s = src->get_u64(&ck->audit_failures); !s) return s;
  if (snapshot::Status s = src->get_u64(&ck->mem_checks); !s) return s;
  ck->iterations = static_cast<int>(iterations);
  ck->restarts = static_cast<int>(restarts);
  return src->expect_exhausted();
}

constexpr int kCkptInterval = 5;

struct CkptPoint {
  const char* scenario = "";
  int checkpoints = 0;
  u64 bytes_last = 0;
  double write_ms_mean = 0;
  double write_ms_max = 0;
  int iterations = 0;
  u64 cycles = 0;
  int restarts = 0;
  u64 mem_checks = 0;
  u64 final_fnv = 0;
};

/// The shrunk-memory machine config shared by the writer and the resuming
/// process -- restore verifies these sizes match the snapshot's.
machine::MachineConfig ckpt_config() {
  machine::MachineConfig cfg;
  cfg.mem.edram_words = 1 << 15;
  cfg.mem.ddr_words = 1 << 16;
  return cfg;
}

/// One audited CG solve under `planned` memory upsets with a generation
/// committed at every clean checkpoint, timing each two-phase write.
CkptPoint checkpoint_solve(const char* scenario, int planned,
                           const std::string& dir) {
  lattice::SolverRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4}, ckpt_config());
  machine::Machine& m = rig.machine();
  lattice::GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(41);
  gauge.randomize_near_unit(rng, 0.1);
  lattice::WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                          lattice::WilsonParams{.kappa = 0.12});
  lattice::DistField x = op.make_field("x");
  lattice::DistField b = op.make_field("b");
  x.zero();
  rig.fill_source(b);

  fault::FaultInjector injector(&m.mesh(), nullptr);
  fault::MemCheckAuditor mem_auditor(&m.mesh());
  if (planned > 0) {
    memsys::ScrubConfig scrub;
    scrub.rows_per_period = 1024;
    m.start_memory_scrubbers(scrub);
    injector.arm(fault::FaultPlan::sustained_mem_upsets(
        /*seed=*/17, m.config().shape, planned, m.engine().now(),
        /*horizon=*/1 << 20, /*uncorrectable_fraction=*/0.05));
  }
  snapshot::MachineExtras extras;
  extras.mem_auditor = &mem_auditor;
  extras.injector = &injector;
  snapshot::SnapshotStore store(dir, "bench");

  CkptPoint point;
  point.scenario = scenario;
  lattice::CgParams params;
  params.tolerance = 1e-8;
  params.max_iterations = 400;
  lattice::CgAuditParams audit;
  audit.mem_clean = [&] { return mem_auditor.clean_since_last(); };
  audit.interval = kCkptInterval;
  audit.on_checkpoint = [&](const lattice::CgCheckpoint& ck) {
    snapshot::SnapshotFile file;
    if (snapshot::Status s = snapshot::capture_machine(m, extras, &file); !s) {
      std::printf("  checkpoint capture failed: %s\n", s.reason.c_str());
      return;
    }
    snapshot::ByteSink solver;
    encode_solver(ck, &solver);
    file.add_section(snapshot::kSecSolver, std::move(solver));
    const auto t0 = std::chrono::steady_clock::now();
    if (snapshot::Status s = store.save(&file); !s) {
      std::printf("  checkpoint save failed: %s\n", s.reason.c_str());
      return;
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    point.checkpoints += 1;
    point.write_ms_mean += ms;  // sum here; divided once below
    point.write_ms_max = std::max(point.write_ms_max, ms);
    point.bytes_last = store.list().back().bytes;
  };
  const lattice::CgResult r = lattice::cg_solve_audited(op, x, b, params, audit);
  if (point.checkpoints > 0) point.write_ms_mean /= point.checkpoints;
  point.iterations = r.iterations;
  point.cycles = static_cast<u64>(r.cycles);
  point.restarts = r.restarts;
  point.mem_checks = r.mem_checks;
  point.final_fnv = field_fnv(x);
  return point;
}

struct RestartPoint {
  bool ok = false;
  u64 recovered_generation = 0;
  double restore_ms = 0;
  int iterations = 0;
  u64 final_fnv = 0;
};

/// Process-restart leg: replay the writer's construction in a fresh machine,
/// restore the newest generation and finish the solve from the checkpoint.
RestartPoint restart_solve(const std::string& dir) {
  RestartPoint point;
  lattice::SolverRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4}, ckpt_config());
  machine::Machine& m = rig.machine();
  lattice::GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(41);
  gauge.randomize_near_unit(rng, 0.1);
  lattice::WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                          lattice::WilsonParams{.kappa = 0.12});
  lattice::DistField x = op.make_field("x");
  lattice::DistField b = op.make_field("b");
  x.zero();
  rig.fill_source(b);
  lattice::CgWorkspace ws = lattice::CgWorkspace::make(op);

  fault::FaultInjector injector(&m.mesh(), nullptr);
  fault::MemCheckAuditor mem_auditor(&m.mesh());
  snapshot::MachineExtras extras;
  extras.mem_auditor = &mem_auditor;
  extras.injector = &injector;

  snapshot::SnapshotStore store(dir, "bench");
  snapshot::SnapshotFile file;
  lattice::CgCheckpoint ck;
  const auto t0 = std::chrono::steady_clock::now();
  if (snapshot::Status s = store.load_latest(&file); !s) {
    std::printf("  restart load failed: %s\n", s.reason.c_str());
    return point;
  }
  if (snapshot::Status s = snapshot::restore_machine(m, extras, file); !s) {
    std::printf("  restart restore failed: %s\n", s.reason.c_str());
    return point;
  }
  if (snapshot::Status s = decode_solver(file, &ck); !s) {
    std::printf("  restart solver decode failed: %s\n", s.reason.c_str());
    return point;
  }
  point.restore_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  point.recovered_generation = file.generation();

  lattice::CgParams params;
  params.tolerance = 1e-8;
  params.max_iterations = 400;
  lattice::CgAuditParams audit;
  audit.mem_clean = [&] { return mem_auditor.clean_since_last(); };
  audit.interval = kCkptInterval;
  audit.workspace = &ws;
  audit.resume = &ck;
  const lattice::CgResult r = lattice::cg_solve_audited(op, x, b, params, audit);
  point.ok = true;
  point.iterations = r.iterations;
  point.final_fnv = field_fnv(x);
  return point;
}

void checkpoint_class(std::vector<perf::Row>& rows) {
  std::printf("checkpoint class: cadence, snapshot size and write latency\n");
  std::vector<CkptPoint> points;
  for (const auto& [scenario, planned] :
       {std::pair<const char*, int>{"clean", 0}, {"mem_upset_restart", 128}}) {
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         (std::string("qcdoc_bench_ckpt_") + scenario))
            .string();
    std::filesystem::remove_all(dir);
    points.push_back(checkpoint_solve(scenario, planned, dir));
    const CkptPoint& p = points.back();
    std::printf(
        "{\"checkpoint_point\": {\"scenario\": \"%s\", \"interval_iters\": %d, "
        "\"checkpoints\": %d, \"snapshot_bytes\": %llu, "
        "\"write_ms_mean\": %.3f, \"write_ms_max\": %.3f, "
        "\"iterations\": %d, \"cycles\": %llu, \"restarts\": %d, "
        "\"mem_checks\": %llu}}\n",
        p.scenario, kCkptInterval, p.checkpoints,
        static_cast<unsigned long long>(p.bytes_last), p.write_ms_mean,
        p.write_ms_max, p.iterations,
        static_cast<unsigned long long>(p.cycles), p.restarts,
        static_cast<unsigned long long>(p.mem_checks));

    if (planned > 0) {
      // The restart leg: recover from the newest generation in a replayed
      // process and finish the solve.  Bit-exactness means the recovered
      // trajectory lands on the writer's exact solution field.
      const RestartPoint rp = restart_solve(dir);
      const bool bit_exact = rp.ok && rp.final_fnv == p.final_fnv;
      std::printf(
          "{\"checkpoint_restart\": {\"scenario\": \"%s\", "
          "\"recovered_generation\": %llu, \"restore_ms\": %.3f, "
          "\"iterations\": %d, \"bit_exact\": %s}}\n",
          p.scenario, static_cast<unsigned long long>(rp.recovered_generation),
          rp.restore_ms, rp.iterations, bit_exact ? "true" : "false");
      rows.push_back({"E14", "restart resume bit-exact", 0,
                      bit_exact ? 1.0 : 0.0, "1=yes"});
    }
  }
  const CkptPoint& upset = points.back();
  rows.push_back({"E14", "snapshot size under mem upsets", 0,
                  static_cast<double>(upset.bytes_last) / (1024.0 * 1024.0),
                  "MB"});
  rows.push_back({"E14", "checkpoint write latency (mean)", 0,
                  upset.write_ms_mean, "ms"});
}

}  // namespace

int main() {
  bench::print_header(
      "E14: bench_fault_campaign -- health monitoring and audit overhead",
      "Ethernet/JTAG monitors and probes failing nodes; link checksums "
      "confirm no erroneous data was exchanged");

  sweep_cost();
  std::printf("\n");
  soak();
  std::printf("\n");

  const CgPoint plain = solve(false);
  const CgPoint audited = solve(true);
  const double overhead =
      100.0 * (static_cast<double>(audited.cycles) / plain.cycles - 1.0);
  std::printf("CG without faults: plain %d iters / %llu cycles, audited %d "
              "iters / %llu cycles\n",
              plain.iterations, static_cast<unsigned long long>(plain.cycles),
              audited.iterations,
              static_cast<unsigned long long>(audited.cycles));

  std::vector<perf::Row> rows = {
      {"E14", "audited-CG machine-cycle overhead", 0, overhead, "% vs plain"},
      {"E14", "spurious restarts without faults", 0,
       static_cast<double>(audited.restarts), "restarts"},
  };
  std::printf("\n");
  mem_fault_class(rows);
  std::printf("\n");
  checkpoint_class(rows);
  bench::print_rows(rows);
  return 0;
}
