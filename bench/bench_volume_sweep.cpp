// E2: efficiency versus local volume and the EDRAM -> DDR cliff.
//
// Paper Section 4: "A 4^4 local volume is a reasonable size for machines
// with a peak speed of 10 Teraflops ... For most of the fermion
// formulations, a 6^4 local volume still fits in our 4 Megabytes of
// imbedded memory.  For still larger volumes, when we must put part of the
// problem in external DDR DRAM, the performance figures fall to the range
// of 30% of peak."
#include "bench_util.h"
#include "lattice/cg.h"
#include "lattice/rig.h"
#include "lattice/wilson.h"

using namespace qcdoc;
using namespace qcdoc::lattice;

namespace {

struct SweepPoint {
  int local_extent;
  double efficiency;
  bool fields_in_edram;
  double edram_used_mb;
};

SweepPoint run_local_volume(int l) {
  const Coord4 global{2 * l, 2 * l, 2 * l, 2 * l};
  SolverRig rig({2, 2, 2, 2, 1, 1}, global);
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(7);
  gauge.randomize_near_unit(rng, 0.15);
  WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge, WilsonParams{});
  DistField x = op.make_field("x");
  DistField b = op.make_field("b");
  x.zero();
  rig.fill_source(b);
  CgParams params;
  params.fixed_iterations = 5;
  const CgResult r = cg_solve(op, x, b, params);
  const auto& mem = rig.m->memory(NodeId{0});
  return SweepPoint{l, perf::cg_efficiency(*rig.m, r),
                    b.body_region() == memsys::Region::kEdram,
                    static_cast<double>(mem.edram_words_used()) * 8 / 1e6};
}

}  // namespace

int main() {
  bench::print_header(
      "E2: bench_volume_sweep -- efficiency vs local volume (Wilson CG)",
      "4^4 and 6^4 local volumes fit the 4 MB EDRAM (40%+); larger volumes "
      "spill to DDR and fall to the range of 30% of peak");

  std::vector<perf::Row> rows;
  for (int l : {2, 4, 6, 8, 10}) {
    const auto pt = run_local_volume(l);
    const double paper = l <= 6 ? 40.0 : 30.0;
    char qty[64];
    std::snprintf(qty, sizeof(qty), "local %d^4 (%s, %.1f MB)", l,
                  pt.fields_in_edram ? "EDRAM" : "DDR spill",
                  pt.edram_used_mb);
    rows.push_back(
        {"E2", qty, paper, 100 * pt.efficiency, "% of peak"});
  }
  bench::print_rows(rows);
  return 0;
}
