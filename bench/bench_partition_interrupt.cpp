// E10: partition-interrupt flood timing.
//
// Paper Section 2.2: a raised interrupt floods to every node of the
// partition; "this global clock period is set so that during the transmit
// window, any node that sets an interrupt will know it has been received
// by all other nodes before the sampling of the partition interrupt status
// is done."  The bench measures the raw flood time across machines of
// growing diameter and confirms delivery at the first window boundary
// after the flood.
#include "bench_util.h"
#include "machine/machine.h"

using namespace qcdoc;

namespace {

struct FloodResult {
  int nodes;
  int diameter;
  double flood_us;     // last node reached (raw propagation)
  double deliver_us;   // sampling point where CPUs see the interrupt
  int interrupted;
};

FloodResult run(std::array<int, 6> extents) {
  machine::MachineConfig cfg;
  cfg.shape.extent = extents;
  machine::Machine m(cfg);
  m.power_on();

  FloodResult res{};
  res.nodes = m.num_nodes();
  // Torus diameter: sum of floor(extent/2).
  for (int e : extents) res.diameter += e / 2;

  // Raw flood propagation: watch pirq packets arrive at the far corner.
  const Cycle t0 = m.engine().now();
  Cycle delivered_at = 0;
  int count = 0;
  m.mesh().pirq().set_interrupt_handler([&](NodeId, u8) {
    ++count;
    delivered_at = m.engine().now();
  });
  m.mesh().pirq().raise(NodeId{0}, 0x1);
  // Track last pirq reception for the raw flood time.
  Cycle last_pirq = t0;
  u64 seen_packets = 0;
  while (m.engine().step()) {
    const u64 now_packets = m.mesh().total_stat("scu.pirq_received");
    if (now_packets != seen_packets) {
      seen_packets = now_packets;
      last_pirq = m.engine().now();
    }
  }
  res.flood_us = m.microseconds(last_pirq - t0);
  res.deliver_us = m.microseconds(delivered_at - t0);
  res.interrupted = count;
  return res;
}

}  // namespace

int main() {
  bench::print_header(
      "E10: bench_partition_interrupt -- interrupt flood across the mesh",
      "every node of the partition sees a raised interrupt before the "
      "window-end sampling of the ~40 MHz global clock");

  std::printf("%22s %8s %10s %12s %12s %12s\n", "machine", "nodes", "diameter",
              "flood us", "sampled us", "interrupted");
  for (const auto extents :
       std::vector<std::array<int, 6>>{{2, 2, 2, 1, 1, 1},
                                       {4, 4, 2, 2, 1, 1},
                                       {4, 4, 4, 2, 2, 1},
                                       {8, 4, 4, 2, 2, 2}}) {
    const auto r = run(extents);
    char name[64];
    std::snprintf(name, sizeof(name), "%dx%dx%dx%dx%dx%d", extents[0],
                  extents[1], extents[2], extents[3], extents[4], extents[5]);
    std::printf("%22s %8d %10d %12.2f %12.2f %12d\n", name, r.nodes,
                r.diameter, r.flood_us, r.deliver_us, r.interrupted);
  }
  std::printf(
      "\n'flood us' includes waiting for the next transmit-window boundary; "
      "the raw\npropagation itself is sub-microsecond even at 1024 nodes "
      "(diameter 11), so every\nnode samples the interrupt at the first "
      "window edge -- the paper's design point.\n");
  return 0;
}
