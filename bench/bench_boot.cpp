// E11: booting over Ethernet/JTAG.
//
// Paper Sections 2.3 and 3.1: there are no PROMs; "during the initial boot
// of QCDOC, each node receives about 100 UDP packets that are handled by
// the Ethernet/JTAG controller ... Then the run kernel is loaded down,
// also taking about 100 UDP packets."  The host drives everything through
// multiple Gigabit Ethernet links.
#include "bench_util.h"
#include "host/qdaemon.h"

using namespace qcdoc;

namespace {

struct BootPoint {
  int nodes;
  double seconds;
  u64 jtag_packets;
  u64 udp_packets;
  bool pirq_ok;
};

BootPoint run(std::array<int, 6> extents, int host_links) {
  machine::MachineConfig cfg;
  cfg.shape.extent = extents;
  machine::Machine m(cfg);
  net::EthernetConfig eth;
  eth.host_links = host_links;
  host::Qdaemon daemon(&m, eth);
  const auto& report = daemon.boot();
  return BootPoint{m.num_nodes(), m.seconds(report.total_cycles),
                   report.jtag_packets, report.udp_packets,
                   report.partition_interrupt_ok};
}

}  // namespace

int main() {
  bench::print_header(
      "E11: bench_boot -- Ethernet/JTAG boot of the machine",
      "~100 JTAG packets + ~100 UDP packets per node; boot scales with the "
      "number of Gigabit host links");

  std::printf("%10s %10s %10s %12s %12s %8s\n", "nodes", "host links",
              "boot s", "jtag pkts", "udp pkts", "pirq ok");
  for (const auto& [extents, links] :
       std::vector<std::pair<std::array<int, 6>, int>>{
           {{2, 2, 2, 1, 1, 1}, 1},
           {{4, 4, 2, 1, 1, 1}, 1},
           {{4, 4, 4, 2, 1, 1}, 1},
           {{4, 4, 4, 2, 1, 1}, 4},
           {{8, 4, 4, 2, 2, 1}, 4}}) {
    const auto pt = run(extents, links);
    std::printf("%10d %10d %10.3f %12llu %12llu %8s\n", pt.nodes, links,
                pt.seconds, static_cast<unsigned long long>(pt.jtag_packets),
                static_cast<unsigned long long>(pt.udp_packets),
                pt.pirq_ok ? "yes" : "NO");
  }

  std::vector<perf::Row> rows = {
      {"E11", "boot packets per node", 200, 200, "packets (100+100)"},
  };
  bench::print_rows(rows);
  return 0;
}
