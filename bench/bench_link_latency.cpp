// E3: nearest-neighbour memory-to-memory latency.
//
// Paper Section 2.2: "This leads to a memory-to-memory transfer time of
// about 600 ns for a nearest neighbor transfer ... for transfers as small
// as 24, 64 bit words to a neighbor, the latency of 600 ns for the first
// word is still small compared to the 3.3 us time for the remaining 23
// words.  Our 600 ns memory-to-memory latency is to be compared to times
// of 5-10 us just to begin a transfer when using standard networks like
// Ethernet."
#include "bench_util.h"
#include "machine/machine.h"
#include "net/cluster_net.h"

using namespace qcdoc;

int main() {
  bench::print_header(
      "E3: bench_link_latency -- nearest-neighbour SCU transfer",
      "~600 ns memory-to-memory first word; 24 words = 600 ns + 3.3 us; "
      "commodity networks need 5-10 us just to begin a transfer");

  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 1, 1, 1, 1, 1};
  machine::Machine m(cfg);
  m.power_on();

  const auto link = torus::link_index(0, torus::Dir::kPlus);
  const NodeId a{0};
  const NodeId b = m.topology().neighbor(a, link);
  auto src = m.memory(a).alloc(24, "src");
  auto dst = m.memory(b).alloc(24, "dst");
  for (u64 i = 0; i < 24; ++i) m.memory(a).write_word(src.word_addr + i, i);

  auto& recv = m.scu(b).recv_dma(torus::facing_link(link));
  recv.start(scu::DmaDescriptor{dst.word_addr, 24, 1, 0});
  const Cycle start = m.engine().now();
  m.scu(a).send_dma(link).start(scu::DmaDescriptor{src.word_addr, 24, 1, 0});
  if (!m.mesh().drain()) {
    std::fprintf(stderr, "stalled link: transfer never completed\n");
    return 1;
  }

  const double first_us = m.microseconds(recv.first_word_landed_at() - start);
  const double rest_us =
      m.microseconds(recv.last_word_landed_at() - recv.first_word_landed_at());

  net::ClusterNet cluster((net::ClusterNetConfig()));
  const double eth_start_us =
      static_cast<double>(cluster.message_cycles(8)) /
      cluster.config().cpu_clock_hz * 1e6;

  std::vector<perf::Row> rows = {
      {"E3", "first word mem-to-mem", 0.600, first_us, "us"},
      {"E3", "remaining 23 words", 3.3, rest_us, "us"},
      {"E3", "Ethernet transfer start", 7.5, eth_start_us, "us (5-10 paper)"},
      {"E3", "QCDOC/cluster latency ratio", 7.5 / 0.6, eth_start_us / first_us,
       "x"},
  };
  bench::print_rows(rows);
  return 0;
}
