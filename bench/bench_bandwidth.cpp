// E5: bandwidths of the three data paths.
//
// Paper: "The total bandwidth is 1.3 GBytes/second at 500 MHz" for the 24
// SCU links (Section 2.2); "a maximum bandwidth of 8 GBytes/second between
// the processor and EDRAM"; "a controller for external DDR SDRAM, with a
// bandwidth of 2.6 GBytes/second" (Section 2.1).
#include "bench_util.h"
#include "machine/machine.h"

using namespace qcdoc;

int main() {
  bench::print_header(
      "E5: bench_bandwidth -- SCU / EDRAM / DDR bandwidths at 500 MHz",
      "aggregate SCU 1.3 GB/s (24 bit-serial links, 72-bit packets); "
      "CPU<->EDRAM 8 GB/s; DDR 2.6 GB/s");

  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 1, 1, 1, 1, 1};
  machine::Machine m(cfg);
  m.power_on();

  // Measure one link by streaming a long transfer.
  const auto link = torus::link_index(0, torus::Dir::kPlus);
  const NodeId a{0};
  const NodeId b = m.topology().neighbor(a, link);
  const u64 words = 4096;
  auto src = m.memory(a).alloc(words, "src");
  auto dst = m.memory(b).alloc(words, "dst");
  auto& recv = m.scu(b).recv_dma(torus::facing_link(link));
  recv.start(scu::DmaDescriptor{dst.word_addr, static_cast<u32>(words), 1, 0});
  const Cycle start = m.engine().now();
  m.scu(a).send_dma(link).start(
      scu::DmaDescriptor{src.word_addr, static_cast<u32>(words), 1, 0});
  if (!m.mesh().drain()) {
    std::fprintf(stderr, "stalled link: transfer never completed\n");
    return 1;
  }
  const double seconds = m.seconds(m.engine().now() - start);
  const double link_Bps = static_cast<double>(words * 8) / seconds;
  const double aggregate_GBps = link_Bps * 24 / 1e9;

  const auto& hw = m.hw();
  const auto& mt = m.mem_timing();
  const double edram_GBps =
      mt.edram_bytes_per_cycle * hw.cpu_clock_hz / 1e9;
  const double ddr_GBps = mt.ddr_bytes_per_cycle * hw.cpu_clock_hz / 1e9;

  std::vector<perf::Row> rows = {
      {"E5", "per-link payload", 64.0 / 72 * 500 / 8, link_Bps / 1e6, "MB/s"},
      {"E5", "aggregate SCU (24 links)", 1.3, aggregate_GBps, "GB/s"},
      {"E5", "CPU <-> EDRAM", 8.0, edram_GBps, "GB/s"},
      {"E5", "DDR SDRAM", 2.6, ddr_GBps, "GB/s"},
      {"E5", "packet efficiency", 8.0 / 9.0, hw.link_packet_efficiency(),
       "fraction"},
  };
  bench::print_rows(rows);
  return 0;
}
