// E8: packaging, power and footprint (paper Section 2.4, Figures 3-5).
//
// "Two ASICs are mounted on a single ... daughterboard ... consumes about
// 20 Watts for both nodes"; "we then plug 32 daughterboards into a
// motherboard" (64 nodes as a 2^6 hypercube); "eight motherboards are
// arranged into a single crate, and two crates are placed into a rack ...
// this water-cooled rack gives a peak speed of 1.0 Teraflops and consumes
// less than 10,000 watts ... allowing 10,000 nodes to have a footprint of
// about 60 square feet."
#include "bench_util.h"
#include "machine/machine.h"
#include "machine/packaging.h"

using namespace qcdoc;
using namespace qcdoc::machine;

int main() {
  bench::print_header(
      "E8: bench_packaging -- daughterboards to racks",
      "2 nodes/daughterboard @ ~20 W; 64-node motherboards (2^6 hypercube); "
      "1024-node racks at 1.0 Tflops under 10 kW; 10k nodes in ~60 sq ft");

  const auto rack = plan_for_nodes(1024, 1e9);
  const auto machine4k = plan_for_nodes(4096, 1e9);
  const auto machine12k = plan_for_nodes(12288, 420e6 * 2);

  std::vector<perf::Row> rows = {
      {"E8", "rack nodes", 1024, static_cast<double>(rack.nodes), ""},
      {"E8", "rack daughterboards", 512, static_cast<double>(rack.daughterboards), ""},
      {"E8", "rack motherboards", 16, static_cast<double>(rack.motherboards), ""},
      {"E8", "rack crates", 2, static_cast<double>(rack.crates), ""},
      {"E8", "rack peak", 1.0, rack.peak_flops / 1e12, "Tflops"},
      {"E8", "rack power", 10.0, rack.power_watts / 1000, "kW (paper: <10)"},
      {"E8", "4096-node daughterboards", 2048, static_cast<double>(machine4k.daughterboards), ""},
      {"E8", "4096-node motherboards", 64, static_cast<double>(machine4k.motherboards), ""},
      {"E8", "4096-node cabinets", 4, static_cast<double>(machine4k.racks), ""},
      {"E8", "4096-node mesh cables", 768, static_cast<double>(machine4k.cables), ""},
      {"E8", "12288-node peak @420MHz", 10.0, machine12k.peak_flops / 1e12,
       "Tflops (paper: 10+)"},
      {"E8", "10240-node footprint", 60.0,
       plan_for_nodes(10240, 1e9).footprint_sqft, "sq ft"},
  };
  bench::print_rows(rows);

  // Motherboard hypercube check on the real 1024-node topology.
  torus::Shape shape;
  shape.extent = {8, 4, 4, 2, 2, 2};
  const torus::Torus torus_1k(shape);
  const PackageMap map(torus_1k);
  int mb0 = 0;
  for (int n = 0; n < torus_1k.num_nodes(); ++n) {
    if (map.locate(NodeId{static_cast<u32>(n)}).motherboard == 0) ++mb0;
  }
  std::printf(
      "\n1024-node machine (8x4x4x2x2x2): %d motherboards, %d nodes on "
      "motherboard 0 (2^6 hypercube = 64)\n",
      map.motherboards(), mb0);
  return 0;
}
