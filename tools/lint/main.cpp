// qcdoc-lint CLI.
//
//   qcdoc-lint [--rule=<id> ...] [--list-rules] <path>...
//
// Paths may be files or directories (recursed for *.h / *.cpp).  Exit code:
// 0 clean, 1 findings, 2 usage error.  Every finding prints one line,
// `file:line: [rule] message`, the format the CI lint job greps and the
// format editors jump on.
#include <cstdio>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: qcdoc-lint [--rule=<id> ...] [--list-rules] "
               "<path>...\n");
}

}  // namespace

int main(int argc, char** argv) {
  using qcdoc::lint::Finding;
  using qcdoc::lint::Options;

  Options opts;
  std::vector<std::string> paths;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg.rfind("--rule=", 0) == 0) {
      opts.only.push_back(arg.substr(7));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "qcdoc-lint: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& info : qcdoc::lint::rule_infos()) {
      std::printf("%-20s %s\n", info.id.c_str(), info.summary.c_str());
    }
    return 0;
  }
  if (paths.empty()) {
    usage();
    return 2;
  }

  const std::vector<Finding> findings = qcdoc::lint::lint_paths(paths, opts);
  for (const Finding& f : findings) {
    std::printf("%s\n", qcdoc::lint::format(f).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "qcdoc-lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
