// qcdoc-lint CLI.
//
//   qcdoc-lint [--rule=<id> ...] [--format=text|json] [--output=<file>]
//              [--list-rules] <path>...
//
// Paths may be files or directories (recursed for *.h / *.cpp).  Exit code:
// 0 clean, 1 findings, 2 usage error.  With --format=text (the default)
// every finding prints one line, `file:line:col: [rule] message`, the
// format the CI lint job greps and the format editors jump on.  With
// --format=json the run is emitted as a SARIF 2.1.0 document (to stdout, or
// to --output=<file>), the format GitHub code scanning ingests; the
// one-line findings still go to stderr so logs stay readable.
#include <cstdio>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: qcdoc-lint [--rule=<id> ...] [--format=text|json] "
               "[--output=<file>] [--list-rules] <path>...\n");
}

}  // namespace

int main(int argc, char** argv) {
  using qcdoc::lint::Finding;
  using qcdoc::lint::Options;

  Options opts;
  std::vector<std::string> paths;
  bool list_rules = false;
  bool sarif = false;
  std::string output;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg.rfind("--rule=", 0) == 0) {
      opts.only.push_back(arg.substr(7));
    } else if (arg.rfind("--format=", 0) == 0) {
      const std::string fmt = arg.substr(9);
      if (fmt == "json" || fmt == "sarif") {
        sarif = true;
      } else if (fmt != "text") {
        std::fprintf(stderr, "qcdoc-lint: unknown format '%s'\n", fmt.c_str());
        usage();
        return 2;
      }
    } else if (arg.rfind("--output=", 0) == 0) {
      output = arg.substr(9);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "qcdoc-lint: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& info : qcdoc::lint::rule_infos()) {
      std::printf("%-24s %s\n", info.id.c_str(), info.summary.c_str());
    }
    return 0;
  }
  if (paths.empty()) {
    usage();
    return 2;
  }

  const std::vector<Finding> findings = qcdoc::lint::lint_paths(paths, opts);
  if (sarif) {
    const std::string doc = qcdoc::lint::format_sarif(findings);
    if (output.empty()) {
      std::fputs(doc.c_str(), stdout);
    } else {
      std::FILE* fp = std::fopen(output.c_str(), "wb");
      if (fp == nullptr) {
        std::fprintf(stderr, "qcdoc-lint: cannot write '%s'\n",
                     output.c_str());
        return 2;
      }
      std::fputs(doc.c_str(), fp);
      std::fclose(fp);
    }
    for (const Finding& f : findings) {
      std::fprintf(stderr, "%s\n", qcdoc::lint::format(f).c_str());
    }
  } else {
    for (const Finding& f : findings) {
      std::printf("%s\n", qcdoc::lint::format(f).c_str());
    }
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "qcdoc-lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
