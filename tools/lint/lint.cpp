#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint/internal.h"
#include "lint/lexer.h"
#include "lint/project.h"

namespace qcdoc::lint {

namespace {

constexpr const char* kMarker = "qcdoc-lint:";
constexpr const char* kSuppressionRule = "suppression";

bool known_rule(const std::string& id) {
  for (const auto& r : rules()) {
    if (id == r->id()) return true;
  }
  return id == kSuppressionRule;
}

bool valid_owner(const std::string& o) {
  return o == "node" || o == "host" || o == "shared" || o == "none";
}

/// The reason is everything after the closing paren; it is mandatory so an
/// annotation always documents *why* the contract does not apply.
bool has_reason_text(const std::string& text, std::size_t close) {
  std::string reason = text.substr(close + 1);
  const std::size_t star = reason.rfind("*/");
  if (star != std::string::npos) reason = reason.substr(0, star);
  return std::any_of(reason.begin(), reason.end(),
                     [](unsigned char c) { return std::isalnum(c) != 0; });
}

/// Parse one marker comment (`qcdoc-lint` plus a colon).  Three forms:
///
///   allow(<rule>[,<rule>...]) reason   -- suppress findings (this line + next)
///   owner(<domain>) reason             -- class ownership (read by project.cpp)
///   touches(<set>) reason              -- host event's touched-affinity set
///
/// Malformed annotations become findings instead of being ignored: a
/// suppression that silently fails to parse would un-suppress (noisy but
/// safe), while one that silently over-matches would hide real findings.
void parse_annotation(const Token& comment, const std::string& path,
                      SourceFile* file, std::vector<Finding>* out) {
  const std::string& text = comment.text;
  const std::size_t at = text.find(kMarker);
  if (at == std::string::npos) return;
  std::size_t p = at + std::string(kMarker).size();
  while (p < text.size() && text[p] == ' ') ++p;

  const bool is_allow = text.compare(p, 6, "allow(") == 0;
  const bool is_owner = text.compare(p, 6, "owner(") == 0;
  const bool is_touches = text.compare(p, 8, "touches(") == 0;
  if (!is_allow && !is_owner && !is_touches) {
    out->push_back({path, comment.line, 0, kSuppressionRule,
                    "malformed annotation: expected 'qcdoc-lint: "
                    "allow(<rule>...)', 'owner(<domain>)' or "
                    "'touches(<set>)', each followed by a reason"});
    return;
  }
  const std::size_t open = text.find('(', p);
  const std::size_t close = text.find(')', open);
  if (close == std::string::npos) {
    out->push_back({path, comment.line, 0, kSuppressionRule,
                    "malformed annotation: unterminated parenthesis"});
    return;
  }
  std::string arg = text.substr(open + 1, close - open - 1);

  if (is_owner) {
    std::string owner = arg;
    owner.erase(std::remove(owner.begin(), owner.end(), ' '), owner.end());
    if (!valid_owner(owner)) {
      out->push_back({path, comment.line, 0, kSuppressionRule,
                      "owner(" + owner + ") is not a domain; use "
                      "node, host, shared or none"});
    }
    if (!has_reason_text(text, close)) {
      out->push_back({path, comment.line, 0, kSuppressionRule,
                      "owner(...) annotation is missing its reason text"});
    }
    return;  // consumed by ProjectIndex::add_file, not a suppression
  }

  if (is_touches) {
    std::string set = arg;
    set.erase(std::remove(set.begin(), set.end(), ' '), set.end());
    if (set.empty()) {
      out->push_back({path, comment.line, 0, kSuppressionRule,
                      "touches() names no affinity set; use e.g. "
                      "touches(all), touches(node), touches(self)"});
      return;
    }
    if (!has_reason_text(text, close)) {
      out->push_back({path, comment.line, 0, kSuppressionRule,
                      "touches(...) annotation is missing its reason text"});
    }
    file->touch_decls.push_back({comment.line, set});
    return;
  }

  SourceFile::Suppression sup;
  sup.line = comment.line;
  std::stringstream ss(arg);
  std::string id;
  while (std::getline(ss, id, ',')) {
    id.erase(std::remove(id.begin(), id.end(), ' '), id.end());
    if (id.empty()) continue;
    if (!known_rule(id)) {
      out->push_back({path, comment.line, 0, kSuppressionRule,
                      "annotation names unknown rule '" + id + "'"});
      continue;
    }
    sup.rules.push_back(id);
  }
  sup.has_reason = has_reason_text(text, close);
  if (!sup.has_reason) {
    out->push_back({path, comment.line, 0, kSuppressionRule,
                    "suppression is missing its reason text"});
  }
  if (!sup.rules.empty()) file->suppressions.push_back(sup);
}

bool suppressed(const SourceFile& f, const Finding& finding) {
  for (const auto& sup : f.suppressions) {
    if (!sup.has_reason) continue;  // already reported as malformed
    if (sup.line != finding.line && sup.line + 1 != finding.line) continue;
    for (const auto& id : sup.rules) {
      if (id == finding.rule) return true;
    }
  }
  return false;
}

std::string normalize(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

bool rule_enabled(const Rule& rule, const Options& opts) {
  if (opts.only.empty()) return true;
  return std::find(opts.only.begin(), opts.only.end(), rule.id()) !=
         opts.only.end();
}

/// One lexed file plus the findings its annotations alone produced.
struct ParsedFile {
  SourceFile src;
  std::vector<Finding> pre;
};

ParsedFile parse_file(const std::string& path, const std::string& content) {
  ParsedFile pf;
  pf.src.path = normalize(path);
  LexResult lexed = lex(content);
  pf.src.tokens = std::move(lexed.tokens);
  pf.src.comments = std::move(lexed.comments);
  for (const Token& c : pf.src.comments) {
    parse_annotation(c, pf.src.path, &pf.src, &pf.pre);
  }
  return pf;
}

/// The two-pass core: index every file, then run the rules per file with
/// the shared cross-TU view.
std::vector<Finding> run(std::vector<ParsedFile> files, const Options& opts) {
  ProjectIndex project;
  for (const ParsedFile& pf : files) project.add_file(pf.src);
  project.finalize();

  std::vector<Finding> findings;
  for (ParsedFile& pf : files) {
    std::vector<Finding> file_findings = std::move(pf.pre);
    std::vector<Finding> raw;
    for (const auto& rule : rules()) {
      if (rule_enabled(*rule, opts)) rule->check(pf.src, project, &raw);
    }
    for (Finding& f : raw) {
      if (!suppressed(pf.src, f)) file_findings.push_back(std::move(f));
    }
    std::stable_sort(file_findings.begin(), file_findings.end(),
                     [](const Finding& a, const Finding& b) {
                       return a.line != b.line ? a.line < b.line
                                               : a.col < b.col;
                     });
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

/// Minimal JSON string escaping (control chars, quotes, backslashes).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<RuleInfo> rule_infos() {
  std::vector<RuleInfo> infos;
  for (const auto& r : rules()) infos.push_back({r->id(), r->summary()});
  infos.push_back({kSuppressionRule,
                   "suppression annotations must parse, name real rules and "
                   "carry a reason"});
  return infos;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content,
                                 const Options& opts) {
  std::vector<ParsedFile> files;
  files.push_back(parse_file(path, content));
  return run(std::move(files), opts);
}

std::vector<Finding> lint_project(
    const std::vector<std::pair<std::string, std::string>>& files,
    const Options& opts) {
  std::vector<ParsedFile> parsed;
  parsed.reserve(files.size());
  for (const auto& [path, content] : files) {
    parsed.push_back(parse_file(path, content));
  }
  return run(std::move(parsed), opts);
}

std::vector<Finding> lint_paths(const std::vector<std::string>& paths,
                                const Options& opts) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::vector<Finding> findings;

  auto consider = [&](const fs::path& p) {
    const std::string ext = p.extension().string();
    if (ext == ".h" || ext == ".cpp" || ext == ".hpp" || ext == ".cc") {
      files.push_back(p.string());
    }
  };

  for (const auto& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec)) consider(it->path());
      }
    } else if (fs::is_regular_file(p, ec)) {
      consider(fs::path(p));
    } else {
      findings.push_back(
          {normalize(p), 0, 0, "io", "no such file or directory"});
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<ParsedFile> parsed;
  parsed.reserve(files.size());
  for (const auto& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      findings.push_back({normalize(f), 0, 0, "io", "unreadable file"});
      continue;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    parsed.push_back(parse_file(f, ss.str()));
  }
  std::vector<Finding> run_findings = run(std::move(parsed), opts);
  findings.insert(findings.end(),
                  std::make_move_iterator(run_findings.begin()),
                  std::make_move_iterator(run_findings.end()));
  return findings;
}

std::string format(const Finding& f) {
  std::string loc = f.path + ":" + std::to_string(f.line);
  if (f.col > 0) loc += ":" + std::to_string(f.col);
  return loc + ": [" + f.rule + "] " + f.message;
}

std::string format_sarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"qcdoc-lint\",\n"
      << "          \"informationUri\": "
         "\"DESIGN.md#static-analysis--determinism-contracts\",\n"
      << "          \"rules\": [\n";
  const std::vector<RuleInfo> infos = rule_infos();
  for (std::size_t i = 0; i < infos.size(); ++i) {
    out << "            {\"id\": \"" << json_escape(infos[i].id)
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(infos[i].summary) << "\"}}"
        << (i + 1 < infos.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "        {\n"
        << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(f.message)
        << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": {\"uri\": \""
        << json_escape(f.path) << "\"},\n"
        << "                \"region\": {\"startLine\": "
        << (f.line > 0 ? f.line : 1);
    if (f.col > 0) out << ", \"startColumn\": " << f.col;
    out << "}\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace qcdoc::lint
