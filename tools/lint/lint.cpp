#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint/internal.h"
#include "lint/lexer.h"

namespace qcdoc::lint {

namespace {

constexpr const char* kMarker = "qcdoc-lint:";
constexpr const char* kSuppressionRule = "suppression";

bool known_rule(const std::string& id) {
  for (const auto& r : rules()) {
    if (id == r->id()) return true;
  }
  return id == kSuppressionRule;
}

/// Parse "qcdoc-lint: allow(rule-a, rule-b) reason..." out of one comment.
/// Malformed annotations become findings instead of being ignored: a
/// suppression that silently fails to parse would un-suppress (noisy but
/// safe), while one that silently over-matches would hide real findings.
void parse_annotation(const Token& comment, const std::string& path,
                      SourceFile* file, std::vector<Finding>* out) {
  const std::string& text = comment.text;
  const std::size_t at = text.find(kMarker);
  if (at == std::string::npos) return;
  std::size_t p = at + std::string(kMarker).size();
  while (p < text.size() && text[p] == ' ') ++p;
  if (text.compare(p, 6, "allow(") != 0) {
    out->push_back({path, comment.line, kSuppressionRule,
                    "malformed annotation: expected 'qcdoc-lint: "
                    "allow(<rule>[,<rule>...]) reason'"});
    return;
  }
  const std::size_t open = p + 5;
  const std::size_t close = text.find(')', open);
  if (close == std::string::npos) {
    out->push_back({path, comment.line, kSuppressionRule,
                    "malformed annotation: unterminated allow("});
    return;
  }

  SourceFile::Suppression sup;
  sup.line = comment.line;
  std::string list = text.substr(open + 1, close - open - 1);
  std::stringstream ss(list);
  std::string id;
  while (std::getline(ss, id, ',')) {
    id.erase(std::remove(id.begin(), id.end(), ' '), id.end());
    if (id.empty()) continue;
    if (!known_rule(id)) {
      out->push_back({path, comment.line, kSuppressionRule,
                      "annotation names unknown rule '" + id + "'"});
      continue;
    }
    sup.rules.push_back(id);
  }
  // The reason is everything after the closing paren; it is mandatory so a
  // suppression always documents *why* the contract does not apply.
  std::string reason = text.substr(close + 1);
  // Strip block-comment terminator and whitespace.
  const std::size_t star = reason.rfind("*/");
  if (star != std::string::npos) reason = reason.substr(0, star);
  sup.has_reason =
      std::any_of(reason.begin(), reason.end(),
                  [](unsigned char c) { return std::isalnum(c) != 0; });
  if (!sup.has_reason) {
    out->push_back({path, comment.line, kSuppressionRule,
                    "suppression is missing its reason text"});
  }
  if (!sup.rules.empty()) file->suppressions.push_back(sup);
}

bool suppressed(const SourceFile& f, const Finding& finding) {
  for (const auto& sup : f.suppressions) {
    if (!sup.has_reason) continue;  // already reported as malformed
    if (sup.line != finding.line && sup.line + 1 != finding.line) continue;
    for (const auto& id : sup.rules) {
      if (id == finding.rule) return true;
    }
  }
  return false;
}

std::string normalize(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

bool rule_enabled(const Rule& rule, const Options& opts) {
  if (opts.only.empty()) return true;
  return std::find(opts.only.begin(), opts.only.end(), rule.id()) !=
         opts.only.end();
}

}  // namespace

std::vector<RuleInfo> rule_infos() {
  std::vector<RuleInfo> infos;
  for (const auto& r : rules()) infos.push_back({r->id(), r->summary()});
  infos.push_back({kSuppressionRule,
                   "suppression annotations must parse, name real rules and "
                   "carry a reason"});
  return infos;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content,
                                 const Options& opts) {
  SourceFile file;
  file.path = normalize(path);
  LexResult lexed = lex(content);
  file.tokens = std::move(lexed.tokens);
  file.comments = std::move(lexed.comments);

  std::vector<Finding> findings;
  for (const Token& c : file.comments) {
    parse_annotation(c, file.path, &file, &findings);
  }

  std::vector<Finding> raw;
  for (const auto& rule : rules()) {
    if (rule_enabled(*rule, opts)) rule->check(file, &raw);
  }
  for (Finding& f : raw) {
    if (!suppressed(file, f)) findings.push_back(std::move(f));
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

std::vector<Finding> lint_paths(const std::vector<std::string>& paths,
                                const Options& opts) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::vector<Finding> findings;

  auto consider = [&](const fs::path& p) {
    const std::string ext = p.extension().string();
    if (ext == ".h" || ext == ".cpp" || ext == ".hpp" || ext == ".cc") {
      files.push_back(p.string());
    }
  };

  for (const auto& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec)) consider(it->path());
      }
    } else if (fs::is_regular_file(p, ec)) {
      consider(fs::path(p));
    } else {
      findings.push_back({normalize(p), 0, "io", "no such file or directory"});
    }
  }
  std::sort(files.begin(), files.end());

  for (const auto& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      findings.push_back({normalize(f), 0, "io", "unreadable file"});
      continue;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    auto file_findings = lint_source(f, ss.str(), opts);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

std::string format(const Finding& f) {
  return f.path + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace qcdoc::lint
