// Minimal C++ tokenizer for qcdoc-lint.
//
// The lint rules are lexical patterns over real token streams -- not text
// grep (comments and string literals must not trigger findings) and not a
// full parser (no libclang in the toolchain; the rules are designed so a
// token-window heuristic decides them reliably).  The lexer therefore only
// needs to: split identifiers/numbers/punctuation, swallow string/char
// literals (including raw strings and their u8/u/U/L-prefixed forms), and
// report comments separately with their line numbers so the suppression
// annotations can be matched to findings.
//
// Two compiler behaviours the lexer must mirror exactly, or rules fire on
// text the compiler never sees (or miss text it does):
//   - a line comment whose last character is a backslash continues onto the
//     next physical line (line splicing happens before comment removal);
//   - a raw string literal swallows everything -- quotes, comment starts,
//     backslashes -- until its )delim" closer, including over newlines.
#pragma once

#include <string>
#include <vector>

namespace qcdoc::lint {

enum class TokKind {
  kIdent,    ///< identifiers and keywords (including `static`, `bool`...)
  kNumber,   ///< numeric literal (pp-number)
  kString,   ///< "..." or R"(...)" (text excludes quotes and prefix)
  kChar,     ///< '...'
  kPunct,    ///< operator / punctuation; multi-char: -> :: << >>
  kComment,  ///< // or /* */ (only in LexResult::comments)
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;  ///< 1-based line of the token's first character
  int col = 0;   ///< 1-based column of the token's first character
};

struct LexResult {
  std::vector<Token> tokens;    ///< code tokens, comments stripped
  std::vector<Token> comments;  ///< comments with line numbers
};

/// Tokenize one translation unit.  Never fails: unterminated literals are
/// closed at end of file (the rules prefer lenient lexing over hard errors
/// on exotic code).
LexResult lex(const std::string& src);

}  // namespace qcdoc::lint
