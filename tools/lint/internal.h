// Internals shared between the lint driver and the rule implementations.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/lint.h"

namespace qcdoc::lint {

/// One parsed translation unit plus its suppression annotations.
struct SourceFile {
  std::string path;  ///< normalized to forward slashes
  std::vector<Token> tokens;
  std::vector<Token> comments;

  struct Suppression {
    int line = 0;
    std::vector<std::string> rules;
    bool has_reason = false;
  };
  std::vector<Suppression> suppressions;

  /// Directory scoping by path substring: in_dir("src/scu/") is true for
  /// "src/scu/link.h" and "/root/repo/src/scu/link.h" alike.
  bool in_dir(const char* dir) const {
    return path.find(dir) != std::string::npos;
  }
  bool in_any(const std::vector<const char*>& dirs) const {
    for (const char* d : dirs) {
      if (in_dir(d)) return true;
    }
    return false;
  }
  bool is_header() const { return path.size() >= 2 && path.ends_with(".h"); }
};

/// The directories whose event scheduling and state feed the engine's order
/// digest.  Wall-clock entropy, hidden statics or unordered iteration here
/// change the golden trace.
inline const std::vector<const char*>& sim_critical_dirs() {
  static const std::vector<const char*> dirs = {
      "src/sim/", "src/scu/", "src/hssl/", "src/net/", "src/fault/"};
  return dirs;
}

/// Superset of sim_critical_dirs(): code whose data ordering reaches the
/// digest indirectly (host sequencing, machine assembly, reduction order).
inline const std::vector<const char*>& digest_affecting_dirs() {
  static const std::vector<const char*> dirs = {
      "src/sim/",   "src/scu/",     "src/hssl/",  "src/net/",
      "src/fault/", "src/machine/", "src/comms/", "src/host/"};
  return dirs;
}

/// Directories whose status-returning APIs must be [[nodiscard]].
inline const std::vector<const char*>& status_api_dirs() {
  static const std::vector<const char*> dirs = {"src/scu/", "src/hssl/",
                                                "src/fault/"};
  return dirs;
}

class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* id() const = 0;
  virtual const char* summary() const = 0;
  virtual void check(const SourceFile& f, std::vector<Finding>* out) const = 0;

 protected:
  void add(const SourceFile& f, int line, std::string message,
           std::vector<Finding>* out) const {
    out->push_back({f.path, line, id(), std::move(message)});
  }
};

/// The R1..R8 registry, in order.
const std::vector<std::unique_ptr<Rule>>& rules();

}  // namespace qcdoc::lint
