// Internals shared between the lint driver and the rule implementations.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/lint.h"
#include "lint/project.h"

namespace qcdoc::lint {

/// One parsed translation unit plus its suppression annotations.
struct SourceFile {
  std::string path;  ///< normalized to forward slashes
  std::vector<Token> tokens;
  std::vector<Token> comments;

  struct Suppression {
    int line = 0;
    std::vector<std::string> rules;
    bool has_reason = false;
  };
  std::vector<Suppression> suppressions;

  /// Declared touched-affinity sets (`qcdoc-lint: touches(<set>) reason`):
  /// a host event that mutates node state must carry one (rule R11), naming
  /// which affinities it may touch -- the same contract the AFFSAN runtime
  /// enforces dynamically (sim/affinity_guard.h).
  struct TouchDecl {
    int line = 0;
    std::string set;  ///< e.g. "all", "node", "self"
  };
  std::vector<TouchDecl> touch_decls;

  /// Directory scoping by path substring: in_dir("src/scu/") is true for
  /// "src/scu/link.h" and "/root/repo/src/scu/link.h" alike.
  bool in_dir(const char* dir) const {
    return path.find(dir) != std::string::npos;
  }
  bool in_any(const std::vector<const char*>& dirs) const {
    for (const char* d : dirs) {
      if (in_dir(d)) return true;
    }
    return false;
  }
  bool is_header() const { return path.size() >= 2 && path.ends_with(".h"); }
};

/// The directories whose event scheduling and state feed the engine's order
/// digest.  Wall-clock entropy, hidden statics or unordered iteration here
/// change the golden trace.
inline const std::vector<const char*>& sim_critical_dirs() {
  static const std::vector<const char*> dirs = {
      "src/sim/", "src/scu/", "src/hssl/", "src/net/", "src/fault/"};
  return dirs;
}

/// Superset of sim_critical_dirs(): code whose data ordering reaches the
/// digest indirectly (host sequencing, machine assembly, reduction order).
inline const std::vector<const char*>& digest_affecting_dirs() {
  static const std::vector<const char*> dirs = {
      "src/sim/",   "src/scu/",     "src/hssl/",  "src/net/",
      "src/fault/", "src/machine/", "src/comms/", "src/host/"};
  return dirs;
}

/// Directories whose status-returning APIs must be [[nodiscard]].
inline const std::vector<const char*>& status_api_dirs() {
  static const std::vector<const char*> dirs = {"src/scu/", "src/hssl/",
                                                "src/fault/"};
  return dirs;
}

/// Everywhere events are scheduled: the affinity-ownership rules R9/R10
/// police benches and examples too, since those drive machines through the
/// same EngineRef API and their digests gate CI.
inline const std::vector<const char*>& scheduling_dirs() {
  static const std::vector<const char*> dirs = {
      "src/sim/",   "src/scu/",     "src/hssl/",  "src/net/",
      "src/fault/", "src/machine/", "src/comms/", "src/host/",
      "src/memsys/", "bench/",      "examples/"};
  return dirs;
}

class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* id() const = 0;
  virtual const char* summary() const = 0;
  /// `project` is the cross-TU index built over every file of the lint
  /// invocation; single-file invocations see an index of just that file.
  virtual void check(const SourceFile& f, const ProjectIndex& project,
                     std::vector<Finding>* out) const = 0;

 protected:
  void add(const SourceFile& f, int line, std::string message,
           std::vector<Finding>* out) const {
    out->push_back({f.path, line, 0, id(), std::move(message)});
  }
  void add(const SourceFile& f, const Token& tok, std::string message,
           std::vector<Finding>* out) const {
    out->push_back({f.path, tok.line, tok.col, id(), std::move(message)});
  }
};

/// The R1..R11 registry, in order.
const std::vector<std::unique_ptr<Rule>>& rules();

}  // namespace qcdoc::lint
