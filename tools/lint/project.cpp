#include "lint/project.h"

#include <algorithm>
#include <deque>

#include "lint/internal.h"

namespace qcdoc::lint {

namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == TokKind::kIdent && t.text == s;
}

const Token* at(const std::vector<Token>& toks, std::size_t i) {
  static const Token kNone{TokKind::kPunct, "", 0, 0};
  return i < toks.size() ? &toks[i] : &kNone;
}

/// Identifiers that can precede '(' inside a class body without naming a
/// member function (types in std::function members, keywords).
bool never_a_method(const std::string& s) {
  static const std::set<std::string> kNot = {
      "void",   "bool",     "int",    "char",   "auto",     "double",
      "float",  "long",     "short",  "unsigned", "signed", "const",
      "u8",     "u16",      "u32",    "u64",    "i8",       "i16",
      "i32",    "i64",      "Cycle",  "size_t", "sizeof",   "decltype",
      "if",     "while",    "for",    "switch", "return",   "operator",
      "new",    "delete",   "catch",  "assert", "static_assert",
      "alignas", "alignof", "noexcept",
  };
  return kNot.count(s) > 0;
}

/// Skip a balanced (...) starting at the '(' at `i`; returns the index one
/// past the matching ')'.
std::size_t skip_parens(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], "(")) ++depth;
    if (is_punct(toks[i], ")") && --depth == 0) return i + 1;
  }
  return i;
}

Domain parse_owner(const std::string& text) {
  const std::size_t at_pos = text.find("owner(");
  if (at_pos == std::string::npos) return Domain::kNone;
  const std::size_t open = at_pos + 6;
  const std::size_t close = text.find(')', open);
  if (close == std::string::npos) return Domain::kNone;
  std::string v = text.substr(open, close - open);
  v.erase(std::remove(v.begin(), v.end(), ' '), v.end());
  if (v == "node") return Domain::kNode;
  if (v == "host") return Domain::kHost;
  if (v == "shared") return Domain::kShared;
  return Domain::kNone;  // "none" and malformed both mean: no claim
}

}  // namespace

const char* to_string(Domain d) {
  switch (d) {
    case Domain::kNone: return "none";
    case Domain::kNode: return "node";
    case Domain::kHost: return "host";
    case Domain::kShared: return "shared";
  }
  return "?";
}

std::string ProjectIndex::path_key(const std::string& path) {
  static const char* kRoots[] = {"src/", "tools/", "tests/", "bench/",
                                 "examples/"};
  std::size_t best_pos = std::string::npos;
  std::size_t best_after = std::string::npos;
  for (const char* root : kRoots) {
    // Rightmost occurrence at a path-component boundary (start of string or
    // just after '/'), so "abc-src/x" is not misread as a root.
    std::size_t p = path.rfind(root);
    while (p != std::string::npos && p != 0 && path[p - 1] != '/') {
      p = path.rfind(root, p - 1);
    }
    if (p == std::string::npos) continue;
    if (best_pos == std::string::npos || p > best_pos) {
      best_pos = p;
      best_after = p + std::string(root).size();
    }
  }
  return best_after == std::string::npos ? path : path.substr(best_after);
}

void ProjectIndex::add_file(const SourceFile& f) {
  const auto& toks = f.tokens;
  const std::string key = path_key(f.path);
  auto& incs = includes_[key];  // register the file even with no includes

  for (std::size_t i = 0; i < toks.size(); ++i) {
    // --- include graph -----------------------------------------------------
    if (is_punct(toks[i], "#") && is_ident(*at(toks, i + 1), "include") &&
        at(toks, i + 2)->kind == TokKind::kString) {
      incs.push_back(at(toks, i + 2)->text);
      i += 2;
      continue;
    }

    // --- class/struct definitions ------------------------------------------
    if (!is_ident(toks[i], "class") && !is_ident(toks[i], "struct")) continue;
    if (i > 0 && is_ident(toks[i - 1], "enum")) continue;
    std::size_t j = i + 1;
    if (is_ident(*at(toks, j), "alignas") && is_punct(*at(toks, j + 1), "(")) {
      j = skip_parens(toks, j + 1);
    }
    if (at(toks, j)->kind != TokKind::kIdent) continue;
    const Token& name_tok = toks[j];
    // Find the body '{' before any ';' (forward declaration) or '(' (a
    // function with a class-type return written inline).
    std::size_t k = j + 1;
    bool has_body = false;
    for (; k < toks.size() && k < j + 96; ++k) {
      if (is_punct(toks[k], "{")) {
        has_body = true;
        break;
      }
      if (is_punct(toks[k], ";") || is_punct(toks[k], "(")) break;
    }
    if (!has_body) continue;

    ClassInfo info;
    info.name = name_tok.text;
    info.path = f.path;
    info.line = name_tok.line;

    // Explicit ownership annotation on or just above the class line.
    for (const Token& c : f.comments) {
      if (c.line < name_tok.line - 2 || c.line > name_tok.line) continue;
      if (c.text.find("qcdoc-lint:") == std::string::npos) continue;
      const Domain d = parse_owner(c.text);
      if (d != Domain::kNone || c.text.find("owner(") != std::string::npos) {
        info.domain = d;
        info.domain_annotated = true;
      }
    }

    // Walk the body at member depth.
    int depth = 1;
    std::size_t b = k + 1;
    for (; b < toks.size() && depth > 0; ++b) {
      const Token& t = toks[b];
      if (is_punct(t, "{")) {
        ++depth;
        continue;
      }
      if (is_punct(t, "}")) {
        --depth;
        continue;
      }
      if (depth != 1 || t.kind != TokKind::kIdent) continue;

      // EngineRef-typed members: `sim::EngineRef name_;` / `EngineRef x_`.
      if (t.text == "EngineRef") {
        const Token* nm = at(toks, b + 1);
        if (nm->kind == TokKind::kIdent) {
          info.has_engine_ref = true;
          info.engine_ref_members.insert(nm->text);
          info.members.insert(nm->text);
        }
        continue;
      }
      // Data members by convention: trailing underscore, terminated like a
      // declarator.
      if (t.text.size() > 1 && t.text.back() == '_') {
        const Token* nx = at(toks, b + 1);
        if (is_punct(*nx, ";") || is_punct(*nx, "=") || is_punct(*nx, "{") ||
            is_punct(*nx, "[")) {
          info.members.insert(t.text);
          continue;
        }
      }
      // Member functions: `name (` ... `)` [const] (`;` | `{` | `=`).
      if (is_punct(*at(toks, b + 1), "(") && !never_a_method(t.text) &&
          t.text != info.name && !(b > 0 && is_punct(toks[b - 1], "~")) &&
          !(b > 0 && is_punct(toks[b - 1], "::")) &&
          !(b > 0 && is_punct(toks[b - 1], ".")) &&
          !(b > 0 && is_punct(toks[b - 1], "->"))) {
        const bool returns_void = b > 0 && is_ident(toks[b - 1], "void");
        const std::size_t after = skip_parens(toks, b + 1);
        bool is_const = false;
        for (std::size_t q = after; q < toks.size() && q < after + 6; ++q) {
          if (is_ident(toks[q], "const")) is_const = true;
          if (is_punct(toks[q], ";") || is_punct(toks[q], "{") ||
              is_punct(toks[q], "=")) {
            break;
          }
        }
        if (returns_void && !is_const) info.mutators.insert(t.text);
        continue;
      }
    }
    classes_[info.name] = std::move(info);
    i = b > i ? b - 1 : i;
  }
}

void ProjectIndex::finalize() {
  finalized_ = true;
  for (auto& [name, info] : classes_) {
    // Inferred domain when not annotated.
    if (!info.domain_annotated) {
      const std::string key = path_key(info.path);
      auto in = [&](const char* d) { return key.rfind(d, 0) == 0; };
      if (in("host/") || in("fault/")) {
        info.domain = Domain::kHost;
      } else if (info.has_engine_ref &&
                 (in("scu/") || in("hssl/") || in("memsys/") || in("net/"))) {
        info.domain = Domain::kNode;
      }
    }
    for (const auto& m : info.members) member_owners_[m].insert(name);
  }
  // Transitive include closure, BFS per file over project-resolved edges.
  for (const auto& [key, direct] : includes_) {
    std::set<std::string>& reach = reach_[key];
    std::deque<std::string> work(direct.begin(), direct.end());
    while (!work.empty()) {
      const std::string cur = work.front();
      work.pop_front();
      if (!reach.insert(cur).second) continue;
      const auto it = includes_.find(cur);
      if (it == includes_.end()) continue;  // system / external header
      for (const auto& next : it->second) work.push_back(next);
    }
  }
}

const ClassInfo* ProjectIndex::find_class(const std::string& name) const {
  const auto it = classes_.find(name);
  return it == classes_.end() ? nullptr : &it->second;
}

Domain ProjectIndex::domain_of(const std::string& cls) const {
  const ClassInfo* c = find_class(cls);
  return c ? c->domain : Domain::kNone;
}

const std::set<std::string>* ProjectIndex::owners_of_member(
    const std::string& m) const {
  const auto it = member_owners_.find(m);
  return it == member_owners_.end() ? nullptr : &it->second;
}

bool ProjectIndex::visible_from(const std::string& from_path,
                                const ClassInfo& cls) const {
  const std::string from = path_key(from_path);
  const std::string def = path_key(cls.path);
  if (from == def) return true;
  const auto it = reach_.find(from);
  return it != reach_.end() && it->second.count(def) > 0;
}

bool ProjectIndex::is_node_mutator(const std::string& from_path,
                                   const std::string& method,
                                   std::string* hit) const {
  for (const auto& [name, info] : classes_) {
    if (info.domain != Domain::kNode) continue;
    if (info.mutators.count(method) == 0) continue;
    if (!visible_from(from_path, info)) continue;
    if (hit) *hit = name;
    return true;
  }
  return false;
}

std::vector<MethodSpan> method_spans(const SourceFile& f) {
  const auto& toks = f.tokens;
  std::vector<MethodSpan> spans;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    // `Class :: method (` at any nesting -- false matches (qualified calls
    // like std::max(...)) are rejected below because no body follows.
    if (toks[i].kind != TokKind::kIdent || !is_punct(toks[i + 1], "::") ||
        toks[i + 2].kind != TokKind::kIdent ||
        !is_punct(*at(toks, i + 3), "(")) {
      continue;
    }
    // Skip deeper qualification (ns::Class::method): anchor on the last
    // `X :: y (` pair, which this match already is.
    const std::size_t after_params = skip_parens(toks, i + 3);
    // Scan the params-to-body gap: modifiers, ctor initializer lists (with
    // balanced parens and ident-prefixed brace-inits), until the body '{'
    // or a terminator proving this is a declaration or expression.
    std::size_t q = after_params;
    std::size_t body_open = 0;
    for (; q < toks.size(); ++q) {
      const Token& t = toks[q];
      if (is_punct(t, ";") || is_punct(t, ",") || is_punct(t, ")") ||
          is_punct(t, "=")) {
        break;  // declaration / call expression / `= default`
      }
      if (is_punct(t, "(")) {
        q = skip_parens(toks, q) - 1;  // initializer-list element
        continue;
      }
      if (is_punct(t, "{")) {
        // Brace-init of an initializer-list member (`hist_{}`) is preceded
        // by an identifier or '>'; the function body never is -- except via
        // trailing qualifiers (`) const {`, `) noexcept {`, `) override {`),
        // which are identifiers but always introduce the body.
        const Token& prev = toks[q - 1];
        const bool qualifier = is_ident(prev, "const") ||
                               is_ident(prev, "noexcept") ||
                               is_ident(prev, "override") ||
                               is_ident(prev, "final");
        if (!qualifier &&
            (prev.kind == TokKind::kIdent || is_punct(prev, ">"))) {
          int d = 0;
          for (; q < toks.size(); ++q) {
            if (is_punct(toks[q], "{")) ++d;
            if (is_punct(toks[q], "}") && --d == 0) break;
          }
          continue;
        }
        body_open = q;
        break;
      }
    }
    if (body_open == 0) continue;
    int depth = 0;
    std::size_t end = body_open;
    for (; end < toks.size(); ++end) {
      if (is_punct(toks[end], "{")) ++depth;
      if (is_punct(toks[end], "}") && --depth == 0) break;
    }
    spans.push_back(
        {toks[i].text, toks[i + 2].text, body_open + 1, end});
    i = end;  // bodies never nest out-of-line definitions
  }
  return spans;
}

const MethodSpan* enclosing_span(const std::vector<MethodSpan>& spans,
                                 std::size_t i) {
  for (const auto& s : spans) {
    if (i >= s.body_begin && i < s.body_end) return &s;
  }
  return nullptr;
}

}  // namespace qcdoc::lint
