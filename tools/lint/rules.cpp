// The determinism & simulation-safety rules (R1..R11 of DESIGN.md "Static
// analysis & determinism contracts").
//
// R1..R8 are lexical patterns over one token stream; R9..R11 additionally
// consult the cross-TU ProjectIndex (ownership domains, mutator tables,
// include visibility).  Each is precise enough to catch every hazard class
// seen (or anticipated) in this tree, simple enough to be reviewed in one
// sitting.  Where a heuristic can over-match, the suppression annotation
// carries the burden of proof -- a false positive costs one annotated line
// with a written reason; a false negative costs a golden-trace diff (or a
// 4-thread data race) three PRs later.
#include <cctype>
#include <initializer_list>
#include <set>
#include <string>

#include "lint/internal.h"

namespace qcdoc::lint {

namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == TokKind::kIdent && t.text == s;
}
bool is_ident_in(const Token& t, const std::set<std::string>& set) {
  return t.kind == TokKind::kIdent && set.count(t.text) > 0;
}

const Token* at(const std::vector<Token>& toks, std::size_t i) {
  static const Token kNone{TokKind::kPunct, "", 0};
  return i < toks.size() ? &toks[i] : &kNone;
}

/// True when the identifier names simulated time: the Cycle type itself,
/// now() reads, or *_cycles counters (trailing underscores of members are
/// ignored).
bool cycleish(const std::vector<Token>& toks, std::size_t i) {
  const Token& t = toks[i];
  if (t.kind != TokKind::kIdent) return false;
  if (t.text == "Cycle") return true;
  if (t.text == "now" && is_punct(*at(toks, i + 1), "(")) return true;
  std::string name = t.text;
  while (!name.empty() && name.back() == '_') name.pop_back();
  if (name.size() >= 6 &&
      name.compare(name.size() - 6, 6, "cycles") == 0) {
    return true;
  }
  return name == "cycle";
}

/// Every spelling of "put an event on the queue".
const std::set<std::string>& schedule_names() {
  static const std::set<std::string> set = {
      "schedule", "schedule_at", "schedule_in", "schedule_on",
      "schedule_at_on"};
  return set;
}

// --- lambda literals ------------------------------------------------------

/// A lambda literal found among a call's arguments, decomposed for the
/// affinity rules.  Token indices refer to SourceFile::tokens; the body is
/// [body_begin, body_end) exclusive of the braces.
struct LambdaLit {
  std::size_t cap_open = 0;   ///< '['
  std::size_t cap_close = 0;  ///< ']'
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  /// Captures the enclosing object's state wholesale: `this`, `[=]`, `[&]`.
  bool captures_enclosing = false;
  bool default_ref = false;             ///< [&] or [&, ...]
  std::vector<std::size_t> ref_caps;    ///< ident index of each `&name`
  std::vector<std::size_t> value_caps;  ///< ident index of each plain `name`
};

/// Parse the capture list and body bounds of the lambda whose '[' is at
/// `open`.  Returns false when no body brace is found (not a lambda).
bool parse_lambda(const std::vector<Token>& toks, std::size_t open,
                  LambdaLit* lam) {
  lam->cap_open = open;
  // Capture list: walk to the matching ']', classifying each top-level item.
  std::size_t j = open + 1;
  int depth = 1;
  bool item_start = true;
  for (; j < toks.size() && depth > 0; ++j) {
    const Token& t = toks[j];
    if (is_punct(t, "[")) ++depth;
    if (is_punct(t, "]")) {
      --depth;
      continue;
    }
    if (depth != 1) continue;
    if (is_punct(t, ",")) {
      item_start = true;
      continue;
    }
    if (!item_start) continue;
    item_start = false;
    if (is_ident(t, "this") || is_punct(t, "=")) {
      lam->captures_enclosing = true;
    } else if (is_punct(t, "&")) {
      const Token& nx = *at(toks, j + 1);
      if (nx.kind == TokKind::kIdent) {
        lam->ref_caps.push_back(j + 1);
      } else {
        lam->default_ref = true;
        lam->captures_enclosing = true;
      }
    } else if (is_punct(t, "*")) {
      // [*this]: a by-value copy of the object -- affinity-safe.
      if (is_ident(*at(toks, j + 1), "this")) ++j;
    } else if (t.kind == TokKind::kIdent) {
      // `name = init` is an init capture (a snapshot; the sanctioned
      // pattern).  A bare `name` copies a local.
      if (!is_punct(*at(toks, j + 1), "=")) lam->value_caps.push_back(j);
    }
  }
  if (depth != 0) return false;
  lam->cap_close = j - 1;
  // Optional parameter list, specifiers (mutable/noexcept), trailing return
  // type; then the body brace.
  std::size_t k = lam->cap_close + 1;
  if (is_punct(*at(toks, k), "(")) {
    int pd = 1;
    for (++k; k < toks.size() && pd > 0; ++k) {
      if (is_punct(toks[k], "(")) ++pd;
      if (is_punct(toks[k], ")")) --pd;
    }
  }
  for (std::size_t guard = 0; guard < 16 && k < toks.size(); ++guard, ++k) {
    if (is_punct(toks[k], "{")) break;
  }
  if (k >= toks.size() || !is_punct(toks[k], "{")) return false;
  lam->body_begin = k + 1;
  int bd = 1;
  std::size_t e = lam->body_begin;
  for (; e < toks.size() && bd > 0; ++e) {
    if (is_punct(toks[e], "{")) ++bd;
    if (is_punct(toks[e], "}")) --bd;
  }
  lam->body_end = e > 0 ? e - 1 : 0;
  return true;
}

/// Find the first lambda literal among the arguments of the call whose
/// opening '(' is at token index `open` (a '[' in argument position, i.e.
/// right after '(' or ',').
bool find_call_lambda(const std::vector<Token>& toks, std::size_t open,
                      LambdaLit* lam) {
  int depth = 1;
  for (std::size_t j = open + 1; j < toks.size() && depth > 0; ++j) {
    if (is_punct(toks[j], "(")) ++depth;
    if (is_punct(toks[j], ")")) --depth;
    if (is_punct(toks[j], "[") &&
        (is_punct(toks[j - 1], "(") || is_punct(toks[j - 1], ","))) {
      return parse_lambda(toks, j, lam);
    }
  }
  return false;
}

// --- R1: wall-clock ------------------------------------------------------

/// Entropy sources that differ between runs.  Everything stochastic must
/// come from qcdoc::Rng seeded out of the machine config; everything timed
/// must come from the engine's simulated clock.
const std::set<std::string>& banned_entropy() {
  static const std::set<std::string> set = {
      "rand",          "srand",           "rand_r",
      "drand48",       "lrand48",         "mrand48",
      "random_device", "system_clock",    "high_resolution_clock",
      "steady_clock",  "gettimeofday",    "clock_gettime",
      "localtime",     "gmtime",          "mt19937",
      "mt19937_64",    "minstd_rand",     "minstd_rand0",
      "ranlux24",      "ranlux48",        "default_random_engine",
  };
  return set;
}

class WallClockRule final : public Rule {
 public:
  const char* id() const override { return "wall-clock"; }
  const char* summary() const override {
    return "no wall-clock or unseeded randomness in sim-critical code; use "
           "qcdoc::Rng seeded from config and the engine's simulated clock";
  }
  void check(const SourceFile& f, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    if (!f.in_any(sim_critical_dirs())) return;
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      if (is_ident_in(t, banned_entropy())) {
        add(f, t,
            "'" + t.text + "' is nondeterministic across runs; draw from "
            "qcdoc::Rng / the engine clock instead",
            out);
        continue;
      }
      // `time(...)` / `clock(...)` as free-function calls only: member
      // accesses (`event.time`) and declarations without a call are fine.
      if ((t.text == "time" || t.text == "clock") &&
          is_punct(*at(toks, i + 1), "(")) {
        const Token* prev = i > 0 ? &toks[i - 1] : nullptr;
        const bool member = prev != nullptr && (is_punct(*prev, ".") ||
                                                is_punct(*prev, "->"));
        // `std::time(` and `::time(` are the C library; `foo::time(` is not.
        bool qualified_other = false;
        if (prev != nullptr && is_punct(*prev, "::") && i >= 2) {
          qualified_other = !is_ident(toks[i - 2], "std");
        }
        if (!member && !qualified_other) {
          add(f, t,
              "'" + t.text + "()' reads the wall clock; simulated time comes "
              "from Engine::now()",
              out);
        }
      }
    }
  }
};

// --- R2: unordered-container ---------------------------------------------

class UnorderedContainerRule final : public Rule {
 public:
  const char* id() const override { return "unordered-container"; }
  const char* summary() const override {
    return "no unordered containers or pointer-keyed ordering in "
           "digest-affecting code; iteration order must be value-determined";
  }
  void check(const SourceFile& f, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    if (!f.in_any(digest_affecting_dirs())) return;
    static const std::set<std::string> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset", "flat_hash_map", "flat_hash_set"};
    static const std::set<std::string> kOrdered = {"map", "set", "multimap",
                                                   "multiset"};
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (is_ident_in(t, kUnordered)) {
        // Any use is flagged, not just iteration: a container that is never
        // iterated today invites the range-for that breaks the digest
        // tomorrow, and a lexer cannot chase aliases across files.  Uses
        // that provably never iterate carry an annotation saying so.
        add(f, t,
            "'" + t.text + "' has nondeterministic iteration order in "
            "digest-affecting code; use std::map/std::set (or annotate why "
            "it is never iterated)",
            out);
        continue;
      }
      // std::map<T*, ...> / std::set<T*>: ordered, but by allocation
      // address, which differs run to run.
      if (is_ident_in(t, kOrdered) && i >= 1 &&
          is_punct(toks[i - 1], "::") && is_punct(*at(toks, i + 1), "<")) {
        int depth = 1;
        for (std::size_t j = i + 2; j < toks.size() && j < i + 64; ++j) {
          const Token& a = toks[j];
          if (is_punct(a, "<")) ++depth;
          if (is_punct(a, ">")) --depth;
          if (is_punct(a, ">>")) depth -= 2;
          if (depth <= 0) break;
          if (depth == 1 && is_punct(a, ",")) break;  // end of key type
          if (is_punct(a, "*")) {
            add(f, t,
                "pointer-keyed std::" + t.text + ": ordering follows "
                "allocation addresses, which are not reproducible; key by a "
                "stable id",
                out);
            break;
          }
        }
      }
    }
  }
};

// --- R3: raw-engine ------------------------------------------------------

class RawEngineRule final : public Rule {
 public:
  const char* id() const override { return "raw-engine"; }
  const char* summary() const override {
    return "outside src/sim, schedule only through a held sim::EngineRef "
           "with node affinity (no raw Engine pointers or temporaries)";
  }
  void check(const SourceFile& f, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    if (!f.in_dir("src/") || f.in_dir("src/sim/")) return;
    static const std::set<std::string> kScheduleCalls = {
        "schedule", "schedule_at", "schedule_on", "schedule_in"};
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      if (!is_punct(*at(toks, i + 1), "(")) continue;
      if (t.text == "schedule_at_on") {
        add(f, t,
            "schedule_at_on is the engine-internal primitive; outside "
            "src/sim route through sim::EngineRef so events carry node "
            "affinity",
            out);
        continue;
      }
      if (kScheduleCalls.count(t.text) == 0) continue;
      const Token* prev = i > 0 ? &toks[i - 1] : nullptr;
      if (prev == nullptr) continue;
      if (is_punct(*prev, "->")) {
        add(f, t,
            "'" + t.text + "' called through a raw Engine pointer; hold a "
            "sim::EngineRef with the owning node's affinity",
            out);
      } else if (is_punct(*prev, ".") && i >= 2 && is_punct(toks[i - 2], ")")) {
        // engine().schedule(...) / host_ref().schedule(...): scheduling on a
        // temporary hides which affinity the event lands on.  Bind a named
        // EngineRef so the affinity decision is visible at the call site.
        add(f, t,
            "'" + t.text + "' called on a temporary engine accessor; bind a "
            "named sim::EngineRef (with explicit affinity) first",
            out);
      }
    }
  }
};

// --- R4: mutable-static --------------------------------------------------

class MutableStaticRule final : public Rule {
 public:
  const char* id() const override { return "mutable-static"; }
  const char* summary() const override {
    return "no non-const static or thread_local state in sim-critical code; "
           "all state must live in objects owned (transitively) by Machine";
  }
  void check(const SourceFile& f, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    if (!f.in_any(sim_critical_dirs())) return;
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (!is_ident(t, "static") && !is_ident(t, "thread_local")) continue;
      bool immutable = false;
      bool is_function = false;
      std::size_t j = i + 1;
      int angle = 0;
      for (; j < toks.size() && j < i + 64; ++j) {
        const Token& a = toks[j];
        if (a.kind == TokKind::kIdent &&
            (a.text == "const" || a.text == "constexpr" ||
             a.text == "constinit")) {
          immutable = true;
          break;
        }
        if (is_punct(a, "<")) ++angle;
        if (is_punct(a, ">")) --angle;
        if (is_punct(a, ">>")) angle -= 2;
        if (angle > 0) continue;
        if (is_punct(a, "(")) {
          // `static void f(...)` -- a function declaration, stateless.
          // (Paren-initialized static objects are misread as functions too;
          // this tree brace-initializes, and the fixture tests pin that.)
          is_function = j > i + 1 && toks[j - 1].kind == TokKind::kIdent;
          break;
        }
        if (is_punct(a, ";") || is_punct(a, "=") || is_punct(a, "{")) break;
      }
      if (!immutable && !is_function) {
        add(f, t,
            "mutable '" + t.text + "' state in sim-critical code outlives "
            "the Machine and leaks across runs/engines; make it const or "
            "move it into an engine-owned object",
            out);
      }
      i = j;  // do not re-flag `thread_local` of `static thread_local X x;`
    }
  }
};

// --- R5: nodiscard-status ------------------------------------------------

class NodiscardStatusRule final : public Rule {
 public:
  const char* id() const override { return "nodiscard-status"; }
  const char* summary() const override {
    return "bool-returning APIs in scu/hssl/fault headers must be "
           "[[nodiscard]]; -Werror=unused-result makes call sites consume "
           "them";
  }
  void check(const SourceFile& f, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    if (!f.in_any(status_api_dirs()) || !f.is_header()) return;
    static const std::set<std::string> kModifiers = {
        "virtual", "inline", "static", "constexpr", "explicit", "friend"};
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!is_ident(toks[i], "bool")) continue;
      const Token& name = toks[i + 1];
      if (name.kind != TokKind::kIdent || name.text == "operator") continue;
      if (!is_punct(toks[i + 2], "(")) continue;
      // Parameters (`void f(bool flag)`) are not declarations of interest.
      if (i > 0 && (is_punct(toks[i - 1], "(") || is_punct(toks[i - 1], ",")))
        continue;
      // Walk back over declaration modifiers to the attribute position.
      std::size_t p = i;
      while (p > 0 && is_ident_in(toks[p - 1], kModifiers)) --p;
      bool has_nodiscard = false;
      if (p >= 2 && is_punct(toks[p - 1], "]") && is_punct(toks[p - 2], "]")) {
        for (std::size_t b = p - 2; b > 0; --b) {
          if (is_punct(toks[b], "[")) break;
          if (is_ident(toks[b], "nodiscard")) {
            has_nodiscard = true;
            break;
          }
        }
      }
      if (!has_nodiscard) {
        add(f, name,
            "status-returning '" + name.text + "' must be [[nodiscard]] so "
            "a dropped failure cannot pass silently",
            out);
      }
    }
  }
};

// --- R6: cycle-narrow ----------------------------------------------------

class CycleNarrowRule final : public Rule {
 public:
  const char* id() const override { return "cycle-narrow"; }
  const char* summary() const override {
    return "no narrowing of Cycle (u64 simulated time) into 32-bit-or-"
           "smaller types; long campaigns overflow u32 after ~8.6 s of "
           "simulated 500 MHz time";
  }
  void check(const SourceFile& f, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    if (!f.in_any(digest_affecting_dirs())) return;
    static const std::set<std::string> kNarrow = {
        "u8",      "u16",      "u32",     "i32",     "int",
        "short",   "unsigned", "uint8_t", "uint16_t", "uint32_t",
        "int32_t", "int16_t"};
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      // static_cast<u32>(expr-involving-cycles)
      if (is_ident(toks[i], "static_cast") && is_punct(*at(toks, i + 1), "<") &&
          is_ident_in(*at(toks, i + 2), kNarrow) &&
          is_punct(*at(toks, i + 3), ">") && is_punct(*at(toks, i + 4), "(")) {
        int depth = 1;
        for (std::size_t j = i + 5; j < toks.size() && depth > 0; ++j) {
          if (is_punct(toks[j], "(")) ++depth;
          if (is_punct(toks[j], ")")) --depth;
          if (depth > 0 && cycleish(toks, j)) {
            add(f, toks[i],
                "static_cast<" + toks[i + 2].text + "> narrows a cycle "
                "count to 32 bits or fewer; keep simulated time in Cycle "
                "(u64)",
                out);
            break;
          }
        }
        continue;
      }
      // u32 deadline = expr-involving-cycles;
      if (is_ident_in(toks[i], kNarrow) &&
          at(toks, i + 1)->kind == TokKind::kIdent &&
          is_punct(*at(toks, i + 2), "=")) {
        for (std::size_t j = i + 3; j < toks.size() && j < i + 48; ++j) {
          if (is_punct(toks[j], ";")) break;
          if (cycleish(toks, j)) {
            add(f, toks[i],
                "'" + toks[i + 1].text + "' stores a cycle quantity in a "
                "32-bit-or-smaller type; declare it Cycle",
                out);
            break;
          }
        }
      }
    }
  }
};

// --- R7: std-function-event ----------------------------------------------

class StdFunctionEventRule final : public Rule {
 public:
  const char* id() const override { return "std-function-event"; }
  const char* summary() const override {
    return "no std::function in src/sim/; event actions use sim::EventFn "
           "(48-byte inline buffer + pooled fallback) so the hot path "
           "allocates zero heap blocks per event";
  }
  void check(const SourceFile& f, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    if (!f.in_dir("src/sim/")) return;
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (is_ident(toks[i], "std") && is_punct(toks[i + 1], "::") &&
          is_ident(toks[i + 2], "function")) {
        add(f, toks[i],
            "std::function heap-allocates nearly every event action (its "
            "inline buffer is 16 bytes); store engine actions in "
            "sim::EventFn",
            out);
      }
    }
  }
};

// --- R8: raw-state-io ----------------------------------------------------

class RawStateIoRule final : public Rule {
 public:
  const char* id() const override { return "raw-state-io"; }
  const char* summary() const override {
    return "outside src/snapshot/, no raw file I/O and no memcpy of whole "
           "structs; persisted state goes through the snapshot serializer "
           "(versioned sections, explicit field encoding, CRCs)";
  }
  void check(const SourceFile& f, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    if (!f.in_dir("src/") || f.in_dir("src/snapshot/")) return;
    static const std::set<std::string> kRawIo = {
        "fwrite", "fread",  "fopen",   "ofstream",
        "ifstream", "fstream", "fprintf", "fscanf"};
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      if (is_ident_in(t, kRawIo)) {
        // fprintf/fscanf to stderr-style logging is fine; everything here
        // is flagged and the rare legitimate use carries an annotation.
        add(f, t,
            "'" + t.text + "' writes or reads machine state as raw bytes "
            "with no version tag or checksum; persist through the snapshot "
            "serializer (src/snapshot)",
            out);
        continue;
      }
      // memcpy(dst, src, sizeof(SomeStruct) [* n]): blitting a whole struct
      // bakes padding, layout and endianness into the byte stream.  Copies
      // sized by sizeof(scalar) or sizeof(expr) are everyday value punning
      // and stay legal (type names are Capitalized in this tree).
      if (!is_ident(t, "memcpy") || !is_punct(*at(toks, i + 1), "(")) continue;
      int depth = 1;
      for (std::size_t j = i + 2; j < toks.size() && depth > 0; ++j) {
        if (is_punct(toks[j], "(")) ++depth;
        if (is_punct(toks[j], ")")) --depth;
        if (depth == 1 && is_ident(toks[j], "sizeof") &&
            is_punct(*at(toks, j + 1), "(")) {
          // Skip namespace qualifiers: sizeof(fault::FaultEvent).
          std::size_t k = j + 2;
          while (at(toks, k)->kind == TokKind::kIdent &&
                 is_punct(*at(toks, k + 1), "::")) {
            k += 2;
          }
          const Token* ty = at(toks, k);
          if (ty->kind == TokKind::kIdent && !ty->text.empty() &&
              std::isupper(static_cast<unsigned char>(ty->text[0])) &&
              is_punct(*at(toks, k + 1), ")")) {
            add(f, t,
                "memcpy of whole struct '" + ty->text + "' serializes "
                "padding and layout; encode fields explicitly via the "
                "snapshot ByteSink/ByteSource",
                out);
            break;
          }
        }
      }
    }
  }
};

// --- R9: cross-affinity-access -------------------------------------------

class CrossAffinityAccessRule final : public Rule {
 public:
  const char* id() const override { return "cross-affinity-access"; }
  const char* summary() const override {
    return "an event delivered to another affinity must not touch the "
           "scheduling object's members through a captured 'this'; snapshot "
           "values into the capture list or schedule through the owner's "
           "EngineRef";
  }
  void check(const SourceFile& f, const ProjectIndex& project,
             std::vector<Finding>* out) const override {
    if (!f.in_any(scheduling_dirs())) return;
    const auto spans = method_spans(f);
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent || !is_punct(*at(toks, i + 1), "(")) {
        continue;
      }
      if (schedule_names().count(t.text) == 0) continue;
      const MethodSpan* span = enclosing_span(spans, i);
      const ClassInfo* cls =
          span != nullptr ? project.find_class(span->class_name) : nullptr;
      // Cross-affinity delivery: the explicit-destination primitives, or a
      // receiver that is an EngineRef member other than the component's own
      // engine_ (this tree's idiom for "the other end's affinity", e.g.
      // Hssl::delivery_).
      bool cross = t.text == "schedule_on" || t.text == "schedule_at_on";
      if (!cross && cls != nullptr && i >= 2 &&
          (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
          toks[i - 2].kind == TokKind::kIdent) {
        const std::string& recv = toks[i - 2].text;
        cross = recv != "engine_" && cls->engine_ref_members.count(recv) > 0;
      }
      if (!cross || cls == nullptr) continue;
      LambdaLit lam;
      if (!find_call_lambda(toks, i + 1, &lam)) continue;
      if (!lam.captures_enclosing) continue;
      // Members of the scheduling class read or written inside the body run
      // under the *destination* affinity -- a cross-affinity access.
      std::set<std::string> flagged;
      for (std::size_t j = lam.body_begin; j < lam.body_end; ++j) {
        const Token& m = toks[j];
        if (m.kind != TokKind::kIdent) continue;
        if (cls->members.count(m.text) == 0 ||
            cls->engine_ref_members.count(m.text) > 0) {
          continue;
        }
        // `other.field_` is somebody else's member; only direct and
        // `this->` accesses belong to the captured object.
        if (j >= 2 &&
            (is_punct(toks[j - 1], ".") || is_punct(toks[j - 1], "->")) &&
            !is_ident(toks[j - 2], "this")) {
          continue;
        }
        if (!flagged.insert(m.text).second) continue;
        add(f, m,
            "'" + m.text + "' is " + cls->name + " state, but this event "
            "executes on another affinity ('" + t.text + "' at line " +
            std::to_string(t.line) + "); snapshot it into the capture list "
            "(x = " + m.text + ") or schedule through the owner's EngineRef",
            out);
      }
    }
  }
};

// --- R10: event-raw-capture ----------------------------------------------

class EventRawCaptureRule final : public Rule {
 public:
  const char* id() const override { return "event-raw-capture"; }
  const char* summary() const override {
    return "scheduled events must not capture references or raw pointers "
           "to another component's state; capture values or stable ids";
  }
  void check(const SourceFile& f, const ProjectIndex& project,
             std::vector<Finding>* out) const override {
    if (!f.in_any(scheduling_dirs())) return;
    const auto spans = method_spans(f);
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent || !is_punct(*at(toks, i + 1), "(")) {
        continue;
      }
      if (schedule_names().count(t.text) == 0) continue;
      LambdaLit lam;
      if (!find_call_lambda(toks, i + 1, &lam)) continue;
      if (lam.default_ref) {
        add(f, toks[lam.cap_open],
            "default reference capture [&] in a scheduled event: every "
            "referenced local is gone by delivery time, and references hide "
            "cross-affinity access; capture explicit values",
            out);
      }
      for (const std::size_t r : lam.ref_caps) {
        add(f, toks[r],
            "'&" + toks[r].text + "' captures a reference into a scheduled "
            "event; by delivery time the referent may be destroyed or owned "
            "by another affinity -- capture a value or a stable id",
            out);
      }
      // A by-value copy of a raw pointer to a node-owned component smuggles
      // that component's state across the affinity boundary just as well as
      // a reference does.
      const MethodSpan* span = enclosing_span(spans, i);
      const ClassInfo* encl =
          span != nullptr ? project.find_class(span->class_name) : nullptr;
      for (const std::size_t v : lam.value_caps) {
        const std::string& name = toks[v].text;
        const std::size_t lo = span != nullptr ? span->body_begin : 0;
        for (std::size_t k = i; k > lo; --k) {
          const std::size_t d = k - 1;
          if (!(toks[d].kind == TokKind::kIdent && toks[d].text == name)) {
            continue;
          }
          if (d < 2 || !is_punct(toks[d - 1], "*") ||
              toks[d - 2].kind != TokKind::kIdent) {
            continue;
          }
          const ClassInfo* pointee = project.find_class(toks[d - 2].text);
          if (pointee == nullptr || pointee->domain != Domain::kNode) break;
          if (encl != nullptr && encl->name == pointee->name) break;
          add(f, toks[v],
              "'" + name + "' is a raw " + pointee->name + "* captured by "
              "value into a scheduled event; the pointee is node-owned "
              "state -- capture a stable id and resolve it at delivery",
              out);
          break;
        }
      }
    }
  }
};

// --- R11: host-touch-undeclared ------------------------------------------

/// Method names too generic to attribute to a node component: containers
/// and engine plumbing share them, and flagging `queue_.clear()` as an Hssl
/// mutation would drown the signal.
const std::set<std::string>& generic_methods() {
  static const std::set<std::string> set = {
      "push_back", "emplace_back", "pop_front", "pop_back", "push",  "pop",
      "emplace",   "insert",       "erase",     "clear",    "reset", "resize",
      "reserve",   "assign",       "swap",      "append",   "add",   "at",
      "get",       "set",          "begin",     "end",      "size",  "empty",
      "front",     "back",         "count",     "find",     "min",   "max",
      "move",      "forward",      "substr",    "to_string", "now",  "run",
      "schedule",  "schedule_at",  "schedule_on", "schedule_in",
      "schedule_at_on"};
  return set;
}

class HostTouchRule final : public Rule {
 public:
  const char* id() const override { return "host-touch-undeclared"; }
  const char* summary() const override {
    return "a host-affinity event that mutates node-owned state must "
           "declare its touched-affinity set: 'qcdoc-lint: touches(<set>) "
           "reason' at the schedule site (AFFSAN enforces it at runtime)";
  }
  void check(const SourceFile& f, const ProjectIndex& project,
             std::vector<Finding>* out) const override {
    if (!f.in_any(scheduling_dirs())) return;
    const auto spans = method_spans(f);
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent || !is_punct(*at(toks, i + 1), "(")) {
        continue;
      }
      // Explicit-destination scheduling is R9's beat; here we care about
      // events that land on the *host* affinity.
      if (t.text != "schedule" && t.text != "schedule_at" &&
          t.text != "schedule_in") {
        continue;
      }
      const MethodSpan* span = enclosing_span(spans, i);
      const ClassInfo* cls =
          span != nullptr ? project.find_class(span->class_name) : nullptr;
      if (cls == nullptr || cls->domain != Domain::kHost) continue;
      if (i < 2 ||
          !(is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) ||
          toks[i - 2].kind != TokKind::kIdent) {
        continue;
      }
      if (!receiver_is_host(toks, span, i - 2, *cls)) continue;
      LambdaLit lam;
      if (!find_call_lambda(toks, i + 1, &lam)) continue;
      std::string mut, mut_cls;
      std::set<std::string> visited;
      if (!reaches_node_mutator(f, project, spans, cls, lam.body_begin,
                                lam.body_end, 0, &visited, &mut, &mut_cls)) {
        continue;
      }
      if (declared(f, toks, t.line, lam)) continue;
      add(f, t,
          "host event reaches node mutator '" + mut_cls + "::" + mut +
          "' with no declared touched-affinity set; annotate the schedule "
          "site with '// qcdoc-lint: touches(<set>) <why>' and bound it at "
          "runtime (QCDOC_AFFSAN_TOUCH*)",
          out);
    }
  }

 private:
  /// True when the schedule receiver is host-affine: the host class's own
  /// EngineRef member, or a local EngineRef constructed with one argument
  /// (the affinity parameter defaults to host).  A two-argument constructor
  /// pins an explicit node affinity -- those events are the node's own.
  /// Unresolvable receivers count as host: over-matching costs one
  /// annotation, under-matching hides a cross-affinity mutation.
  static bool receiver_is_host(const std::vector<Token>& toks,
                               const MethodSpan* span, std::size_t recv_i,
                               const ClassInfo& cls) {
    const std::string& recv = toks[recv_i].text;
    if (cls.engine_ref_members.count(recv) > 0) return true;
    const std::size_t lo = span != nullptr ? span->body_begin : 0;
    for (std::size_t k = recv_i; k > lo; --k) {
      const std::size_t d = k - 1;
      if (toks[d].kind != TokKind::kIdent || toks[d].text != recv) continue;
      if (d < 1 || !is_ident(toks[d - 1], "EngineRef")) continue;
      if (!is_punct(*at(toks, d + 1), "(")) continue;
      int depth = 1;
      int commas = 0;
      for (std::size_t j = d + 2; j < toks.size() && depth > 0; ++j) {
        if (is_punct(toks[j], "(")) ++depth;
        if (is_punct(toks[j], ")")) --depth;
        if (depth == 1 && is_punct(toks[j], ",")) ++commas;
      }
      return commas == 0;
    }
    return true;
  }

  /// Does [begin, end) call a void-returning non-const method of a
  /// node-domain class visible from this TU?  Chases calls into same-file
  /// methods of the scheduling class (`apply(...)` helpers), two levels
  /// deep.
  static bool reaches_node_mutator(const SourceFile& f,
                                   const ProjectIndex& project,
                                   const std::vector<MethodSpan>& spans,
                                   const ClassInfo* cls, std::size_t begin,
                                   std::size_t end, int depth,
                                   std::set<std::string>* visited,
                                   std::string* mut, std::string* mut_cls) {
    const auto& toks = f.tokens;
    for (std::size_t j = begin; j < end && j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::kIdent ||
          !is_punct(*at(toks, j + 1), "(")) {
        continue;
      }
      const std::string& name = toks[j].text;
      if (generic_methods().count(name) > 0) continue;
      std::string hit;
      if (project.is_node_mutator(f.path, name, &hit)) {
        *mut = name;
        *mut_cls = hit;
        return true;
      }
      if (depth >= 2 || cls == nullptr || cls->mutators.count(name) == 0 ||
          !visited->insert(name).second) {
        continue;
      }
      for (const MethodSpan& s : spans) {
        if (s.class_name != cls->name || s.method_name != name) continue;
        if (reaches_node_mutator(f, project, spans, cls, s.body_begin,
                                 s.body_end, depth + 1, visited, mut,
                                 mut_cls)) {
          return true;
        }
        break;
      }
    }
    return false;
  }

  /// A touches(...) annotation anywhere from the line above the schedule
  /// call through the end of the lambda body declares the set; so does a
  /// runtime QCDOC_AFFSAN_TOUCH* scope inside the body.
  static bool declared(const SourceFile& f, const std::vector<Token>& toks,
                       int sched_line, const LambdaLit& lam) {
    const int end_line =
        lam.body_end < toks.size() ? toks[lam.body_end].line : sched_line;
    for (const auto& d : f.touch_decls) {
      if (d.line >= sched_line - 1 && d.line <= end_line) return true;
    }
    for (std::size_t j = lam.body_begin; j < lam.body_end; ++j) {
      if (toks[j].kind == TokKind::kIdent &&
          toks[j].text.rfind("QCDOC_AFFSAN_TOUCH", 0) == 0) {
        return true;
      }
    }
    return false;
  }
};

}  // namespace

const std::vector<std::unique_ptr<Rule>>& rules() {
  // qcdoc-lint: allow(mutable-static) the registry itself is in tools/, not
  // sim-critical; built once, read-only thereafter.
  static const auto* kRules = [] {
    auto* v = new std::vector<std::unique_ptr<Rule>>();
    v->push_back(std::make_unique<WallClockRule>());
    v->push_back(std::make_unique<UnorderedContainerRule>());
    v->push_back(std::make_unique<RawEngineRule>());
    v->push_back(std::make_unique<MutableStaticRule>());
    v->push_back(std::make_unique<NodiscardStatusRule>());
    v->push_back(std::make_unique<CycleNarrowRule>());
    v->push_back(std::make_unique<StdFunctionEventRule>());
    v->push_back(std::make_unique<RawStateIoRule>());
    v->push_back(std::make_unique<CrossAffinityAccessRule>());
    v->push_back(std::make_unique<EventRawCaptureRule>());
    v->push_back(std::make_unique<HostTouchRule>());
    return v;
  }();
  return *kRules;
}

}  // namespace qcdoc::lint
