// The determinism & simulation-safety rules (R1..R8 of DESIGN.md "Static
// analysis & determinism contracts").
//
// Each rule is a lexical pattern over the token stream: precise enough to
// catch every hazard class seen (or anticipated) in this tree, simple enough
// to be reviewed in one sitting.  Where a heuristic can over-match, the
// suppression annotation carries the burden of proof -- a false positive
// costs one annotated line with a written reason; a false negative costs a
// golden-trace diff three PRs later.
#include <cctype>
#include <initializer_list>
#include <set>
#include <string>

#include "lint/internal.h"

namespace qcdoc::lint {

namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == TokKind::kIdent && t.text == s;
}
bool is_ident_in(const Token& t, const std::set<std::string>& set) {
  return t.kind == TokKind::kIdent && set.count(t.text) > 0;
}

const Token* at(const std::vector<Token>& toks, std::size_t i) {
  static const Token kNone{TokKind::kPunct, "", 0};
  return i < toks.size() ? &toks[i] : &kNone;
}

/// True when the identifier names simulated time: the Cycle type itself,
/// now() reads, or *_cycles counters (trailing underscores of members are
/// ignored).
bool cycleish(const std::vector<Token>& toks, std::size_t i) {
  const Token& t = toks[i];
  if (t.kind != TokKind::kIdent) return false;
  if (t.text == "Cycle") return true;
  if (t.text == "now" && is_punct(*at(toks, i + 1), "(")) return true;
  std::string name = t.text;
  while (!name.empty() && name.back() == '_') name.pop_back();
  if (name.size() >= 6 &&
      name.compare(name.size() - 6, 6, "cycles") == 0) {
    return true;
  }
  return name == "cycle";
}

// --- R1: wall-clock ------------------------------------------------------

/// Entropy sources that differ between runs.  Everything stochastic must
/// come from qcdoc::Rng seeded out of the machine config; everything timed
/// must come from the engine's simulated clock.
const std::set<std::string>& banned_entropy() {
  static const std::set<std::string> set = {
      "rand",          "srand",           "rand_r",
      "drand48",       "lrand48",         "mrand48",
      "random_device", "system_clock",    "high_resolution_clock",
      "steady_clock",  "gettimeofday",    "clock_gettime",
      "localtime",     "gmtime",          "mt19937",
      "mt19937_64",    "minstd_rand",     "minstd_rand0",
      "ranlux24",      "ranlux48",        "default_random_engine",
  };
  return set;
}

class WallClockRule final : public Rule {
 public:
  const char* id() const override { return "wall-clock"; }
  const char* summary() const override {
    return "no wall-clock or unseeded randomness in sim-critical code; use "
           "qcdoc::Rng seeded from config and the engine's simulated clock";
  }
  void check(const SourceFile& f, std::vector<Finding>* out) const override {
    if (!f.in_any(sim_critical_dirs())) return;
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      if (is_ident_in(t, banned_entropy())) {
        add(f, t.line,
            "'" + t.text + "' is nondeterministic across runs; draw from "
            "qcdoc::Rng / the engine clock instead",
            out);
        continue;
      }
      // `time(...)` / `clock(...)` as free-function calls only: member
      // accesses (`event.time`) and declarations without a call are fine.
      if ((t.text == "time" || t.text == "clock") &&
          is_punct(*at(toks, i + 1), "(")) {
        const Token* prev = i > 0 ? &toks[i - 1] : nullptr;
        const bool member = prev != nullptr && (is_punct(*prev, ".") ||
                                                is_punct(*prev, "->"));
        // `std::time(` and `::time(` are the C library; `foo::time(` is not.
        bool qualified_other = false;
        if (prev != nullptr && is_punct(*prev, "::") && i >= 2) {
          qualified_other = !is_ident(toks[i - 2], "std");
        }
        if (!member && !qualified_other) {
          add(f, t.line,
              "'" + t.text + "()' reads the wall clock; simulated time comes "
              "from Engine::now()",
              out);
        }
      }
    }
  }
};

// --- R2: unordered-container ---------------------------------------------

class UnorderedContainerRule final : public Rule {
 public:
  const char* id() const override { return "unordered-container"; }
  const char* summary() const override {
    return "no unordered containers or pointer-keyed ordering in "
           "digest-affecting code; iteration order must be value-determined";
  }
  void check(const SourceFile& f, std::vector<Finding>* out) const override {
    if (!f.in_any(digest_affecting_dirs())) return;
    static const std::set<std::string> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset", "flat_hash_map", "flat_hash_set"};
    static const std::set<std::string> kOrdered = {"map", "set", "multimap",
                                                   "multiset"};
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (is_ident_in(t, kUnordered)) {
        // Any use is flagged, not just iteration: a container that is never
        // iterated today invites the range-for that breaks the digest
        // tomorrow, and a lexer cannot chase aliases across files.  Uses
        // that provably never iterate carry an annotation saying so.
        add(f, t.line,
            "'" + t.text + "' has nondeterministic iteration order in "
            "digest-affecting code; use std::map/std::set (or annotate why "
            "it is never iterated)",
            out);
        continue;
      }
      // std::map<T*, ...> / std::set<T*>: ordered, but by allocation
      // address, which differs run to run.
      if (is_ident_in(t, kOrdered) && i >= 1 &&
          is_punct(toks[i - 1], "::") && is_punct(*at(toks, i + 1), "<")) {
        int depth = 1;
        for (std::size_t j = i + 2; j < toks.size() && j < i + 64; ++j) {
          const Token& a = toks[j];
          if (is_punct(a, "<")) ++depth;
          if (is_punct(a, ">")) --depth;
          if (is_punct(a, ">>")) depth -= 2;
          if (depth <= 0) break;
          if (depth == 1 && is_punct(a, ",")) break;  // end of key type
          if (is_punct(a, "*")) {
            add(f, t.line,
                "pointer-keyed std::" + t.text + ": ordering follows "
                "allocation addresses, which are not reproducible; key by a "
                "stable id",
                out);
            break;
          }
        }
      }
    }
  }
};

// --- R3: raw-engine ------------------------------------------------------

class RawEngineRule final : public Rule {
 public:
  const char* id() const override { return "raw-engine"; }
  const char* summary() const override {
    return "outside src/sim, schedule only through a held sim::EngineRef "
           "with node affinity (no raw Engine pointers or temporaries)";
  }
  void check(const SourceFile& f, std::vector<Finding>* out) const override {
    if (!f.in_dir("src/") || f.in_dir("src/sim/")) return;
    static const std::set<std::string> kScheduleCalls = {
        "schedule", "schedule_at", "schedule_on", "schedule_in"};
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      if (!is_punct(*at(toks, i + 1), "(")) continue;
      if (t.text == "schedule_at_on") {
        add(f, t.line,
            "schedule_at_on is the engine-internal primitive; outside "
            "src/sim route through sim::EngineRef so events carry node "
            "affinity",
            out);
        continue;
      }
      if (kScheduleCalls.count(t.text) == 0) continue;
      const Token* prev = i > 0 ? &toks[i - 1] : nullptr;
      if (prev == nullptr) continue;
      if (is_punct(*prev, "->")) {
        add(f, t.line,
            "'" + t.text + "' called through a raw Engine pointer; hold a "
            "sim::EngineRef with the owning node's affinity",
            out);
      } else if (is_punct(*prev, ".") && i >= 2 && is_punct(toks[i - 2], ")")) {
        // engine().schedule(...) / host_ref().schedule(...): scheduling on a
        // temporary hides which affinity the event lands on.  Bind a named
        // EngineRef so the affinity decision is visible at the call site.
        add(f, t.line,
            "'" + t.text + "' called on a temporary engine accessor; bind a "
            "named sim::EngineRef (with explicit affinity) first",
            out);
      }
    }
  }
};

// --- R4: mutable-static --------------------------------------------------

class MutableStaticRule final : public Rule {
 public:
  const char* id() const override { return "mutable-static"; }
  const char* summary() const override {
    return "no non-const static or thread_local state in sim-critical code; "
           "all state must live in objects owned (transitively) by Machine";
  }
  void check(const SourceFile& f, std::vector<Finding>* out) const override {
    if (!f.in_any(sim_critical_dirs())) return;
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (!is_ident(t, "static") && !is_ident(t, "thread_local")) continue;
      bool immutable = false;
      bool is_function = false;
      std::size_t j = i + 1;
      int angle = 0;
      for (; j < toks.size() && j < i + 64; ++j) {
        const Token& a = toks[j];
        if (a.kind == TokKind::kIdent &&
            (a.text == "const" || a.text == "constexpr" ||
             a.text == "constinit")) {
          immutable = true;
          break;
        }
        if (is_punct(a, "<")) ++angle;
        if (is_punct(a, ">")) --angle;
        if (is_punct(a, ">>")) angle -= 2;
        if (angle > 0) continue;
        if (is_punct(a, "(")) {
          // `static void f(...)` -- a function declaration, stateless.
          // (Paren-initialized static objects are misread as functions too;
          // this tree brace-initializes, and the fixture tests pin that.)
          is_function = j > i + 1 && toks[j - 1].kind == TokKind::kIdent;
          break;
        }
        if (is_punct(a, ";") || is_punct(a, "=") || is_punct(a, "{")) break;
      }
      if (!immutable && !is_function) {
        add(f, t.line,
            "mutable '" + t.text + "' state in sim-critical code outlives "
            "the Machine and leaks across runs/engines; make it const or "
            "move it into an engine-owned object",
            out);
      }
      i = j;  // do not re-flag `thread_local` of `static thread_local X x;`
    }
  }
};

// --- R5: nodiscard-status ------------------------------------------------

class NodiscardStatusRule final : public Rule {
 public:
  const char* id() const override { return "nodiscard-status"; }
  const char* summary() const override {
    return "bool-returning APIs in scu/hssl/fault headers must be "
           "[[nodiscard]]; -Werror=unused-result makes call sites consume "
           "them";
  }
  void check(const SourceFile& f, std::vector<Finding>* out) const override {
    if (!f.in_any(status_api_dirs()) || !f.is_header()) return;
    static const std::set<std::string> kModifiers = {
        "virtual", "inline", "static", "constexpr", "explicit", "friend"};
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!is_ident(toks[i], "bool")) continue;
      const Token& name = toks[i + 1];
      if (name.kind != TokKind::kIdent || name.text == "operator") continue;
      if (!is_punct(toks[i + 2], "(")) continue;
      // Parameters (`void f(bool flag)`) are not declarations of interest.
      if (i > 0 && (is_punct(toks[i - 1], "(") || is_punct(toks[i - 1], ",")))
        continue;
      // Walk back over declaration modifiers to the attribute position.
      std::size_t p = i;
      while (p > 0 && is_ident_in(toks[p - 1], kModifiers)) --p;
      bool has_nodiscard = false;
      if (p >= 2 && is_punct(toks[p - 1], "]") && is_punct(toks[p - 2], "]")) {
        for (std::size_t b = p - 2; b > 0; --b) {
          if (is_punct(toks[b], "[")) break;
          if (is_ident(toks[b], "nodiscard")) {
            has_nodiscard = true;
            break;
          }
        }
      }
      if (!has_nodiscard) {
        add(f, name.line,
            "status-returning '" + name.text + "' must be [[nodiscard]] so "
            "a dropped failure cannot pass silently",
            out);
      }
    }
  }
};

// --- R6: cycle-narrow ----------------------------------------------------

class CycleNarrowRule final : public Rule {
 public:
  const char* id() const override { return "cycle-narrow"; }
  const char* summary() const override {
    return "no narrowing of Cycle (u64 simulated time) into 32-bit-or-"
           "smaller types; long campaigns overflow u32 after ~8.6 s of "
           "simulated 500 MHz time";
  }
  void check(const SourceFile& f, std::vector<Finding>* out) const override {
    if (!f.in_any(digest_affecting_dirs())) return;
    static const std::set<std::string> kNarrow = {
        "u8",      "u16",      "u32",     "i32",     "int",
        "short",   "unsigned", "uint8_t", "uint16_t", "uint32_t",
        "int32_t", "int16_t"};
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      // static_cast<u32>(expr-involving-cycles)
      if (is_ident(toks[i], "static_cast") && is_punct(*at(toks, i + 1), "<") &&
          is_ident_in(*at(toks, i + 2), kNarrow) &&
          is_punct(*at(toks, i + 3), ">") && is_punct(*at(toks, i + 4), "(")) {
        int depth = 1;
        for (std::size_t j = i + 5; j < toks.size() && depth > 0; ++j) {
          if (is_punct(toks[j], "(")) ++depth;
          if (is_punct(toks[j], ")")) --depth;
          if (depth > 0 && cycleish(toks, j)) {
            add(f, toks[i].line,
                "static_cast<" + toks[i + 2].text + "> narrows a cycle "
                "count to 32 bits or fewer; keep simulated time in Cycle "
                "(u64)",
                out);
            break;
          }
        }
        continue;
      }
      // u32 deadline = expr-involving-cycles;
      if (is_ident_in(toks[i], kNarrow) &&
          at(toks, i + 1)->kind == TokKind::kIdent &&
          is_punct(*at(toks, i + 2), "=")) {
        for (std::size_t j = i + 3; j < toks.size() && j < i + 48; ++j) {
          if (is_punct(toks[j], ";")) break;
          if (cycleish(toks, j)) {
            add(f, toks[i].line,
                "'" + toks[i + 1].text + "' stores a cycle quantity in a "
                "32-bit-or-smaller type; declare it Cycle",
                out);
            break;
          }
        }
      }
    }
  }
};

// --- R7: std-function-event ----------------------------------------------

class StdFunctionEventRule final : public Rule {
 public:
  const char* id() const override { return "std-function-event"; }
  const char* summary() const override {
    return "no std::function in src/sim/; event actions use sim::EventFn "
           "(48-byte inline buffer + pooled fallback) so the hot path "
           "allocates zero heap blocks per event";
  }
  void check(const SourceFile& f, std::vector<Finding>* out) const override {
    if (!f.in_dir("src/sim/")) return;
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (is_ident(toks[i], "std") && is_punct(toks[i + 1], "::") &&
          is_ident(toks[i + 2], "function")) {
        add(f, toks[i].line,
            "std::function heap-allocates nearly every event action (its "
            "inline buffer is 16 bytes); store engine actions in "
            "sim::EventFn",
            out);
      }
    }
  }
};

// --- R8: raw-state-io ----------------------------------------------------

class RawStateIoRule final : public Rule {
 public:
  const char* id() const override { return "raw-state-io"; }
  const char* summary() const override {
    return "outside src/snapshot/, no raw file I/O and no memcpy of whole "
           "structs; persisted state goes through the snapshot serializer "
           "(versioned sections, explicit field encoding, CRCs)";
  }
  void check(const SourceFile& f, std::vector<Finding>* out) const override {
    if (!f.in_dir("src/") || f.in_dir("src/snapshot/")) return;
    static const std::set<std::string> kRawIo = {
        "fwrite", "fread",  "fopen",   "ofstream",
        "ifstream", "fstream", "fprintf", "fscanf"};
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      if (is_ident_in(t, kRawIo)) {
        // fprintf/fscanf to stderr-style logging is fine; everything here
        // is flagged and the rare legitimate use carries an annotation.
        add(f, t.line,
            "'" + t.text + "' writes or reads machine state as raw bytes "
            "with no version tag or checksum; persist through the snapshot "
            "serializer (src/snapshot)",
            out);
        continue;
      }
      // memcpy(dst, src, sizeof(SomeStruct) [* n]): blitting a whole struct
      // bakes padding, layout and endianness into the byte stream.  Copies
      // sized by sizeof(scalar) or sizeof(expr) are everyday value punning
      // and stay legal (type names are Capitalized in this tree).
      if (!is_ident(t, "memcpy") || !is_punct(*at(toks, i + 1), "(")) continue;
      int depth = 1;
      for (std::size_t j = i + 2; j < toks.size() && depth > 0; ++j) {
        if (is_punct(toks[j], "(")) ++depth;
        if (is_punct(toks[j], ")")) --depth;
        if (depth == 1 && is_ident(toks[j], "sizeof") &&
            is_punct(*at(toks, j + 1), "(")) {
          // Skip namespace qualifiers: sizeof(fault::FaultEvent).
          std::size_t k = j + 2;
          while (at(toks, k)->kind == TokKind::kIdent &&
                 is_punct(*at(toks, k + 1), "::")) {
            k += 2;
          }
          const Token* ty = at(toks, k);
          if (ty->kind == TokKind::kIdent && !ty->text.empty() &&
              std::isupper(static_cast<unsigned char>(ty->text[0])) &&
              is_punct(*at(toks, k + 1), ")")) {
            add(f, t.line,
                "memcpy of whole struct '" + ty->text + "' serializes "
                "padding and layout; encode fields explicitly via the "
                "snapshot ByteSink/ByteSource",
                out);
            break;
          }
        }
      }
    }
  }
};

}  // namespace

const std::vector<std::unique_ptr<Rule>>& rules() {
  // qcdoc-lint: allow(mutable-static) the registry itself is in tools/, not
  // sim-critical; built once, read-only thereafter.
  static const auto* kRules = [] {
    auto* v = new std::vector<std::unique_ptr<Rule>>();
    v->push_back(std::make_unique<WallClockRule>());
    v->push_back(std::make_unique<UnorderedContainerRule>());
    v->push_back(std::make_unique<RawEngineRule>());
    v->push_back(std::make_unique<MutableStaticRule>());
    v->push_back(std::make_unique<NodiscardStatusRule>());
    v->push_back(std::make_unique<CycleNarrowRule>());
    v->push_back(std::make_unique<StdFunctionEventRule>());
    v->push_back(std::make_unique<RawStateIoRule>());
    return v;
  }();
  return *kRules;
}

}  // namespace qcdoc::lint
