// qcdoc-lint: repo-specific determinism and simulation-safety contracts,
// enforced at build time.
//
// The golden-trace tests pin a bit-identical (time, dest, src, seq) event
// order across engines and thread counts; these rules catch the code
// patterns that would silently break that pin (wall-clock entropy, unordered
// iteration, raw engine access, hidden mutable statics, dropped status
// returns, cycle-count narrowing) *before* they show up as a golden-trace
// diff several PRs later.  See DESIGN.md "Static analysis & determinism
// contracts" for the rationale behind every rule.
//
// Suppressions are explicit source annotations with a mandatory reason:
//
//   // qcdoc-lint: allow(mutable-static) per-thread cache, reset per window
//
// An annotation suppresses matching findings on its own line and on the
// following line.  A missing reason or an unknown rule id is itself a
// finding (rule id "suppression"), so annotations cannot rot silently.
#pragma once

#include <string>
#include <vector>

namespace qcdoc::lint {

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string id;
  std::string summary;
};

struct Options {
  /// When non-empty, only run rules whose id is listed (the "suppression"
  /// meta-rule always runs; broken annotations are never acceptable).
  std::vector<std::string> only;
};

/// Every registered rule, in R1..R8 order (plus the suppression meta-rule).
std::vector<RuleInfo> rule_infos();

/// Lint one in-memory translation unit.  `path` decides which directory-
/// scoped rules apply (matched by substring, e.g. "src/scu/"), so tests can
/// lint fixture sources under virtual paths.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content,
                                 const Options& opts = {});

/// Lint files and directory trees (recursing into *.h / *.cpp).  Unreadable
/// paths produce an "io" finding rather than a silent skip.
std::vector<Finding> lint_paths(const std::vector<std::string>& paths,
                                const Options& opts = {});

/// "file:line: [rule] message" -- the one-line CI format.
std::string format(const Finding& f);

}  // namespace qcdoc::lint
