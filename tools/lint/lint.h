// qcdoc-lint -- repo-specific determinism and simulation-safety contracts,
// enforced at build time.
//
// The golden-trace tests pin a bit-identical (time, dest, src, seq) event
// order across engines and thread counts; these rules catch the code
// patterns that would silently break that pin (wall-clock entropy, unordered
// iteration, raw engine access, hidden mutable statics, dropped status
// returns, cycle-count narrowing, cross-affinity state access) *before*
// they show up as a golden-trace diff several PRs later.  See DESIGN.md
// "Static analysis & determinism contracts" for the rationale behind every
// rule.
//
// v2 is a cross-translation-unit pass: all files of an invocation are lexed
// first, a ProjectIndex (include graph + class/ownership symbol table,
// project.h) is built over them, and only then do the rules run -- so the
// affinity-ownership rules R9..R11 can ask which classes are per-node
// components and whether they are visible from a given TU.
//
// Suppressions are explicit source annotations with a mandatory reason:
//
//   // qcdoc-lint: allow(mutable-static) per-thread cache, reset per window
//
// An annotation suppresses matching findings on its own line and on the
// following line.  A missing reason or an unknown rule id is itself a
// finding (rule id "suppression"), so annotations cannot rot silently.
// Two further annotation forms feed the ownership model:
//
//   // qcdoc-lint: owner(node) <reason>     -- on a class: ownership domain
//   // qcdoc-lint: touches(all) <reason>    -- on a host event: touched set
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace qcdoc::lint {

struct Finding {
  std::string path;
  int line = 0;
  int col = 0;  ///< 1-based column; 0 when unknown (file-level findings)
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string id;
  std::string summary;
};

struct Options {
  /// When non-empty, only run rules whose id is listed (the "suppression"
  /// meta-rule always runs; broken annotations are never acceptable).
  std::vector<std::string> only;
};

/// Every registered rule, in R1..R11 order (plus the suppression meta-rule).
std::vector<RuleInfo> rule_infos();

/// Lint one in-memory translation unit.  `path` decides which directory-
/// scoped rules apply (matched by substring, e.g. "src/scu/"), so tests can
/// lint fixture sources under virtual paths.  Cross-TU rules see an index
/// of only this file.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content,
                                 const Options& opts = {});

/// Lint a set of in-memory files as one project: the cross-TU index spans
/// all of them (so a fixture .cpp can use classes a fixture .h defines).
std::vector<Finding> lint_project(
    const std::vector<std::pair<std::string, std::string>>& files,
    const Options& opts = {});

/// Lint files and directory trees (recursing into *.h / *.cpp).  Unreadable
/// paths produce an "io" finding rather than a silent skip.  All files of
/// the invocation share one cross-TU index.
std::vector<Finding> lint_paths(const std::vector<std::string>& paths,
                                const Options& opts = {});

/// "file:line:col: [rule] message" -- the one-line CI/editor format
/// (":col" omitted when unknown).
std::string format(const Finding& f);

/// The whole run as a SARIF 2.1.0 document (one run, one result per
/// finding, rule metadata included) -- the format GitHub code scanning and
/// PR annotation actions ingest.
std::string format_sarif(const std::vector<Finding>& findings);

}  // namespace qcdoc::lint
