#include "lint/lexer.h"

#include <cctype>

namespace qcdoc::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

LexResult lex(const std::string& src) {
  LexResult out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && peek(1) == '/') {
      const int start_line = line;
      std::size_t j = i;
      while (j < n && src[j] != '\n') ++j;
      out.comments.push_back(
          {TokKind::kComment, src.substr(i, j - i), start_line});
      i = j;
      continue;
    }
    // Block comment (may span lines; attributed to its first line, and also
    // registered once per contained line so suppressions inside multi-line
    // comments still anchor correctly -- one entry is enough in practice).
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      j = j + 1 < n ? j + 2 : n;
      out.comments.push_back(
          {TokKind::kComment, src.substr(i, j - i), start_line});
      i = j;
      continue;
    }

    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(' && src[j] != '\n' && delim.size() < 16) {
        delim.push_back(src[j++]);
      }
      if (j < n && src[j] == '(') {
        const std::string closer = ")" + delim + "\"";
        const std::size_t body = j + 1;
        const std::size_t end = src.find(closer, body);
        const std::size_t stop = end == std::string::npos ? n : end;
        out.tokens.push_back(
            {TokKind::kString, src.substr(body, stop - body), line});
        for (std::size_t k = i; k < stop && k < n; ++k) {
          if (src[k] == '\n') ++line;
        }
        i = stop == n ? n : stop + closer.size();
        continue;
      }
      // Not actually a raw string ("R" followed by a plain literal); fall
      // through and lex `R` as an identifier.
    }

    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      std::string text;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          text.push_back(src[j + 1]);
          j += 2;
          continue;
        }
        if (src[j] == '\n') ++line;  // unterminated; keep line count honest
        text.push_back(src[j++]);
      }
      out.tokens.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kChar, text, line});
      i = j < n ? j + 1 : n;
      continue;
    }

    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_cont(src[j])) ++j;
      out.tokens.push_back({TokKind::kIdent, src.substr(i, j - i), line});
      i = j;
      continue;
    }

    // Number (pp-number: digits, letters, dots, ' separators, exponent sign).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::size_t j = i + 1;
      while (j < n) {
        const char d = src[j];
        if (ident_cont(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') &&
                   (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                    src[j - 1] == 'p' || src[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      out.tokens.push_back({TokKind::kNumber, src.substr(i, j - i), line});
      i = j;
      continue;
    }

    // Punctuation.  Only the multi-char operators the rules reason about are
    // fused; everything else is emitted one character at a time.
    if ((c == '-' && peek(1) == '>') || (c == ':' && peek(1) == ':') ||
        (c == '<' && peek(1) == '<') || (c == '>' && peek(1) == '>')) {
      out.tokens.push_back({TokKind::kPunct, src.substr(i, 2), line});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace qcdoc::lint
