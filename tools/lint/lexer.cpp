#include "lint/lexer.h"

#include <cctype>

namespace qcdoc::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Length of a raw-string prefix (the part before the opening quote) when
/// the source at `i` begins a raw string literal: R" uR" UR" LR" u8R".
/// Returns 0 when this is not a raw string.
std::size_t raw_prefix_len(const std::string& src, std::size_t i) {
  const std::size_t n = src.size();
  auto at = [&](std::size_t k) { return i + k < n ? src[i + k] : '\0'; };
  if (at(0) == 'R' && at(1) == '"') return 1;
  if ((at(0) == 'u' || at(0) == 'U' || at(0) == 'L') && at(1) == 'R' &&
      at(2) == '"') {
    return 2;
  }
  if (at(0) == 'u' && at(1) == '8' && at(2) == 'R' && at(3) == '"') return 3;
  return 0;
}

}  // namespace

LexResult lex(const std::string& src) {
  LexResult out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  // Offset of the first character of the current line; columns are
  // 1-based distances from it.
  std::size_t line_start = 0;

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };
  // Register the newline at offset `at`; subsequent characters are on the
  // next line.  Every path that walks past a '\n' must route through here
  // or columns drift.
  auto newline_at = [&](std::size_t at) {
    ++line;
    line_start = at + 1;
  };
  auto col_of = [&](std::size_t at) {
    return static_cast<int>(at - line_start) + 1;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      newline_at(i);
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Line comment.  Line splicing happens before comment removal in real
    // translation, so a backslash immediately before the newline continues
    // the comment onto the next physical line -- code there is commented
    // out and must not produce findings.
    if (c == '/' && peek(1) == '/') {
      const int start_line = line;
      const int start_col = col_of(i);
      std::size_t j = i;
      while (j < n) {
        if (src[j] == '\n') {
          // Spliced? (allow trailing '\r' of CRLF files between '\' and
          // '\n'.)
          std::size_t back = j;
          if (back > 0 && src[back - 1] == '\r') --back;
          if (back > 0 && src[back - 1] == '\\') {
            newline_at(j);
            ++j;
            continue;
          }
          break;
        }
        ++j;
      }
      out.comments.push_back(
          {TokKind::kComment, src.substr(i, j - i), start_line, start_col});
      i = j;
      continue;
    }
    // Block comment (attributed to its first line).
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      const int start_col = col_of(i);
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') newline_at(j);
        ++j;
      }
      j = j + 1 < n ? j + 2 : n;
      out.comments.push_back(
          {TokKind::kComment, src.substr(i, j - i), start_line, start_col});
      i = j;
      continue;
    }

    // Raw string literal, with or without an encoding prefix:
    // R"delim( ... )delim", uR"...", UR"...", LR"...", u8R"...".  The body
    // swallows everything (quotes, comment starts, newlines) up to the
    // matching closer; mislexing the prefix would spill the body into the
    // code token stream and rules would fire inside literal text.
    if (const std::size_t plen = raw_prefix_len(src, i); plen != 0) {
      std::size_t j = i + plen + 1;  // past the opening quote
      std::string delim;
      while (j < n && src[j] != '(' && src[j] != '\n' && delim.size() < 16) {
        delim.push_back(src[j++]);
      }
      if (j < n && src[j] == '(') {
        const std::string closer = ")" + delim + "\"";
        const std::size_t body = j + 1;
        const std::size_t end = src.find(closer, body);
        const std::size_t stop = end == std::string::npos ? n : end;
        out.tokens.push_back({TokKind::kString, src.substr(body, stop - body),
                              line, col_of(i)});
        for (std::size_t k = i; k < stop && k < n; ++k) {
          if (src[k] == '\n') newline_at(k);
        }
        i = stop == n ? n : stop + closer.size();
        continue;
      }
      // Not actually a raw string (no '(' after the delimiter scan); fall
      // through and lex the prefix as an identifier.
    }

    // String / char literal.  (Plain-prefixed forms u8"", u"", U"", L""
    // arrive here as identifier-then-string, which is harmless: the body
    // is still swallowed as one string token.)
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_col = col_of(i);
      std::size_t j = i + 1;
      std::string text;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          if (src[j + 1] == '\n') newline_at(j + 1);  // spliced literal line
          text.push_back(src[j + 1]);
          j += 2;
          continue;
        }
        if (src[j] == '\n') newline_at(j);  // unterminated; keep count honest
        text.push_back(src[j++]);
      }
      out.tokens.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kChar, text, line,
           start_col});
      i = j < n ? j + 1 : n;
      continue;
    }

    // Identifier / keyword.
    if (ident_start(c)) {
      const int start_col = col_of(i);
      std::size_t j = i + 1;
      while (j < n && ident_cont(src[j])) ++j;
      out.tokens.push_back(
          {TokKind::kIdent, src.substr(i, j - i), line, start_col});
      i = j;
      continue;
    }

    // Number (pp-number: digits, letters, dots, ' separators, exponent sign).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      const int start_col = col_of(i);
      std::size_t j = i + 1;
      while (j < n) {
        const char d = src[j];
        if (ident_cont(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') &&
                   (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                    src[j - 1] == 'p' || src[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      out.tokens.push_back(
          {TokKind::kNumber, src.substr(i, j - i), line, start_col});
      i = j;
      continue;
    }

    // Punctuation.  Only the multi-char operators the rules reason about are
    // fused; everything else is emitted one character at a time.
    if ((c == '-' && peek(1) == '>') || (c == ':' && peek(1) == ':') ||
        (c == '<' && peek(1) == '<') || (c == '>' && peek(1) == '>')) {
      out.tokens.push_back({TokKind::kPunct, src.substr(i, 2), line, col_of(i)});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line, col_of(i)});
    ++i;
  }
  return out;
}

}  // namespace qcdoc::lint
