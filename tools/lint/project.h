// Cross-translation-unit index for qcdoc-lint.
//
// The v1 rules (R1..R8) are per-file token patterns.  The affinity-ownership
// rules (R9..R11) need facts no single file contains: which classes are
// per-node components, which of their members hold state, which methods
// mutate it, and which headers a translation unit actually sees.  The
// ProjectIndex supplies exactly that, built from the same token streams the
// per-file rules use:
//
//   - an include graph over quoted #include directives, keyed by
//     project-relative paths ("scu/scu.h"), with its transitive closure, so
//     a rule can ask "is class X visible from this TU?";
//   - a symbol table of class/struct definitions: trailing-underscore data
//     members, `sim::EngineRef`-typed members, and mutating (void-returning,
//     non-const) methods;
//   - an ownership domain per class.  Explicit annotation wins:
//
//         // qcdoc-lint: owner(node) reason...
//         class Hssl { ... };
//
//     (valid owners: node, host, shared, none).  Without an annotation the
//     domain is inferred: a class holding a `sim::EngineRef` in a per-node
//     directory (src/scu, src/hssl, src/memsys, src/net) is node-owned;
//     classes under src/host and src/fault are host-side orchestrators.
//
// The index never chases type aliases or templates -- it is the same
// deliberate trade as the v1 rules: over-matching costs one annotated line
// with a written reason, under-matching costs a 2-or-4-thread data race that
// only shows as a golden-trace diff if the timing happens to move.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"

namespace qcdoc::lint {

struct SourceFile;

/// Which affinity's events may mutate a class's state.
enum class Domain {
  kNone,    ///< not affinity-scoped (value types, pure-host containers)
  kNode,    ///< per-node component: owned by one node affinity
  kHost,    ///< host-side orchestrator: runs in host slices
  kShared,  ///< explicitly multi-affinity (annotated; rare)
};

const char* to_string(Domain d);

struct ClassInfo {
  std::string name;
  std::string path;  ///< normalized path of the defining file
  int line = 0;
  Domain domain = Domain::kNone;
  bool domain_annotated = false;  ///< explicit owner(...) annotation
  bool has_engine_ref = false;
  std::set<std::string> members;             ///< trailing-'_' data members
  std::set<std::string> engine_ref_members;  ///< EngineRef-typed members
  std::set<std::string> mutators;  ///< void-returning non-const methods
};

/// One out-of-line member-function definition (`Class::method(...) { ... }`)
/// located in a token stream; body bounds are token indices into
/// SourceFile::tokens ([begin, end) covers the braces' contents).
struct MethodSpan {
  std::string class_name;
  std::string method_name;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

class ProjectIndex {
 public:
  /// Scan one file's tokens into the symbol table and include graph.  Call
  /// once per file, then finalize().
  void add_file(const SourceFile& f);
  /// Compute member ownership and the include closure.  add_file() after
  /// finalize() is a logic error.
  void finalize();

  /// nullptr when no class of that name was indexed.
  const ClassInfo* find_class(const std::string& name) const;
  Domain domain_of(const std::string& cls) const;
  /// Classes declaring data member `m` (nullptr when none).
  const std::set<std::string>* owners_of_member(const std::string& m) const;
  /// True when `from_path`'s translation unit (transitively) includes the
  /// file defining `cls`, or is that file itself.
  bool visible_from(const std::string& from_path, const ClassInfo& cls) const;
  /// True when `method` names a mutator of some node-domain class visible
  /// from `from_path`.  `hit` (optional) receives one such class name.
  bool is_node_mutator(const std::string& from_path, const std::string& method,
                       std::string* hit = nullptr) const;

  std::size_t num_classes() const { return classes_.size(); }
  std::size_t num_files() const { return includes_.size(); }

  /// Project-relative key of a path: the part after the last source root
  /// ("src/", "tools/", "tests/", "bench/", "examples/"), matching how this
  /// tree writes its quoted #include paths.
  static std::string path_key(const std::string& path);

 private:
  std::map<std::string, ClassInfo> classes_;
  std::map<std::string, std::set<std::string>> member_owners_;
  std::map<std::string, std::vector<std::string>> includes_;  ///< key -> keys
  std::map<std::string, std::set<std::string>> reach_;  ///< transitive closure
  bool finalized_ = false;
};

/// Locate every out-of-line `Class::method(...) { ... }` definition in `f`
/// (constructors included).  Used by rules to attribute a token position to
/// its enclosing class.
std::vector<MethodSpan> method_spans(const SourceFile& f);

/// The span containing token index `i`, or nullptr.
const MethodSpan* enclosing_span(const std::vector<MethodSpan>& spans,
                                 std::size_t i);

}  // namespace qcdoc::lint
