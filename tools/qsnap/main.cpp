// qsnap: inspect and verify snapshot files without loading machine state.
//
//   qsnap info <file.qsnap>         header + section table + CRC check
//   qsnap list <dir> <stream>       all generations of a stream, verified
//   qsnap verify <file.qsnap>       CRC check only, quiet; exit code is
//                                   0 good / 1 corrupt or unreadable
//
// Verification uses SnapshotFile::verify -- header, table and per-section
// CRCs over the raw bytes -- so a multi-gigabyte snapshot is checked without
// decoding any payload into live state.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "snapshot/format.h"
#include "snapshot/store.h"

namespace {

using qcdoc::u64;
using qcdoc::u8;
using qcdoc::snapshot::GenerationInfo;
using qcdoc::snapshot::SnapshotFile;
using qcdoc::snapshot::SnapshotStore;
using qcdoc::snapshot::Status;

int usage() {
  std::fprintf(stderr,
               "usage: qsnap info <file.qsnap>\n"
               "       qsnap list <dir> <stream>\n"
               "       qsnap verify <file.qsnap>\n");
  return 2;
}

/// Verify one file; prints the section table when `verbose`.
int inspect(const std::string& path, bool verbose) {
  std::vector<u8> bytes;
  if (Status s = qcdoc::snapshot::read_file_bytes(path, &bytes); !s) {
    std::fprintf(stderr, "qsnap: %s: %s\n", path.c_str(), s.reason.c_str());
    return 1;
  }
  u64 generation = 0;
  std::vector<std::string> notes;
  const Status verdict = SnapshotFile::verify(bytes, &generation, &notes);
  if (verbose) {
    std::printf("file:       %s\n", path.c_str());
    std::printf("size:       %zu bytes\n", bytes.size());
    if (!notes.empty() || verdict.good()) {
      // The header parsed: generation and table are trustworthy.
      std::printf("format:     QSNAP v%u\n", qcdoc::snapshot::kFormatVersion);
      std::printf("generation: %llu\n",
                  static_cast<unsigned long long>(generation));
      std::printf("sections:   %zu\n", notes.size());
      for (const std::string& n : notes) std::printf("  %s\n", n.c_str());
    }
  }
  if (!verdict) {
    std::fprintf(stderr, "qsnap: %s: %s\n", path.c_str(),
                 verdict.reason.c_str());
    return 1;
  }
  if (verbose) std::printf("verify:     OK\n");
  return 0;
}

int list_stream(const std::string& dir, const std::string& stream) {
  const SnapshotStore store(dir, stream);
  const std::vector<GenerationInfo> gens = store.list();
  if (gens.empty()) {
    std::printf("no generations for stream '%s' in %s\n", stream.c_str(),
                dir.c_str());
    return 1;
  }
  int bad = 0;
  for (const GenerationInfo& g : gens) {
    std::vector<u8> bytes;
    std::string state = "GOOD";
    std::string detail;
    if (Status s = qcdoc::snapshot::read_file_bytes(g.path, &bytes); !s) {
      state = "BAD ";
      detail = s.reason;
    } else {
      u64 generation = 0;
      if (Status s = SnapshotFile::verify(bytes, &generation, nullptr); !s) {
        state = "BAD ";
        detail = s.reason;
      }
    }
    if (state == "BAD ") ++bad;
    std::printf("g%08llu  %s  %10llu bytes  %s%s%s\n",
                static_cast<unsigned long long>(g.generation), state.c_str(),
                static_cast<unsigned long long>(g.bytes), g.path.c_str(),
                detail.empty() ? "" : "  -- ", detail.c_str());
  }
  return bad == static_cast<int>(gens.size()) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd == "info") return inspect(argv[2], /*verbose=*/true);
  if (cmd == "verify") return inspect(argv[2], /*verbose=*/false);
  if (cmd == "list") {
    if (argc < 4) return usage();
    return list_stream(argv[2], argv[3]);
  }
  return usage();
}
