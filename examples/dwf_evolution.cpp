// Domain-wall fermions on an evolving gauge background, with the paper's
// bit-reproducibility verification (Section 4).
//
// "A five day simulation was completed on a 128 node machine ... and then
// redone, with the requirement that the resulting QCD configuration be
// identical in all bits."  Domain-wall fermions are "a prime target for
// much of our work with QCDOC".
#include <cstdio>

#include "lattice/cg.h"
#include "lattice/dwf.h"
#include "lattice/rig.h"
#include "perf/report.h"

using namespace qcdoc;
using namespace qcdoc::lattice;

namespace {

struct Trajectory {
  double plaquette = 0;
  double residual = 0;
  int iterations = 0;
  double efficiency = 0;
  Cycle cycles = 0;
};

Trajectory evolve_and_measure(u64 seed) {
  SolverRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 4});
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(seed);

  // Quenched evolution: thermalize a few heatbath sweeps at beta = 5.7.
  gauge.randomize_near_unit(rng, 0.3);
  for (int sweep = 0; sweep < 2; ++sweep) gauge.heatbath_sweep(5.7, rng);

  Trajectory t;
  t.plaquette = gauge.average_plaquette();

  // Measure a domain-wall propagator on the configuration.
  DwfDirac dwf(rig.ops.get(), rig.geom.get(), &gauge,
               DwfParams{.ls = 6, .kappa5 = 0.14, .mf = 0.5});
  DistField x = dwf.make_field("x");
  DistField b = dwf.make_field("b");
  x.zero();
  rig.fill_source(b);
  CgParams params;
  params.tolerance = 1e-6;
  params.max_iterations = 120;
  const CgResult r = cg_solve(dwf, x, b, params);
  t.residual = r.relative_residual;
  t.iterations = r.iterations;
  t.efficiency = perf::cg_efficiency(*rig.m, r);
  t.cycles = rig.bsp->now();
  return t;
}

}  // namespace

int main() {
  std::printf("domain-wall fermions on 4 nodes, (2x2x4x4) x Ls=6 per node\n\n");

  const Trajectory run1 = evolve_and_measure(20031208);
  std::printf("run 1: plaquette %.15f, CG %d iterations to |r|/|b| = %.1e\n",
              run1.plaquette, run1.iterations, run1.residual);
  std::printf("       DWF CG efficiency %.1f%% of peak "
              "(paper expects > clover's 46.5%%)\n",
              100 * run1.efficiency);

  std::printf("\nre-running the identical evolution...\n");
  const Trajectory run2 = evolve_and_measure(20031208);
  std::printf("run 2: plaquette %.15f, CG %d iterations to |r|/|b| = %.1e\n",
              run2.plaquette, run2.iterations, run2.residual);

  const bool identical = run1.plaquette == run2.plaquette &&
                         run1.residual == run2.residual &&
                         run1.cycles == run2.cycles;
  std::printf("\nbit-identical re-run: %s\n",
              identical ? "YES -- configuration, solution and simulated "
                          "machine time all agree exactly"
                        : "NO (this would be a hardware error on the real "
                          "machine)");
  return identical ? 0 : 1;
}
