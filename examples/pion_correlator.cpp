// The canonical lattice-QCD measurement: a pion correlator.
//
// This is what the 12,288-node machines were built to compute.  A point
// source at the origin is inverted through the Wilson-Dirac operator (with
// the even-odd preconditioned solver production codes used); the zero-
// momentum pion correlator
//
//   C(t) = sum_x |S(x, t)|^2
//
// then decays as cosh(m_pi (t - T/2)) on a periodic lattice, and the
// effective mass  m_eff(t) = ln C(t)/C(t+1)  plateaus at the pion mass.
#include <cmath>
#include <cstdio>
#include <vector>

#include "lattice/cg.h"
#include "lattice/eo_cg.h"
#include "lattice/rig.h"
#include "lattice/wilson.h"
#include "perf/report.h"

using namespace qcdoc;
using namespace qcdoc::lattice;

int main() {
  // 4 nodes; a 4^3 x 8 lattice (2x4x4x4 per node... 2x2 machine dims).
  SolverRig rig({2, 2, 1, 1, 1, 1}, {4, 4, 4, 8});
  const int t_extent = rig.geom->global_extent()[3];

  // A quenched background at beta = 5.7.
  GaugeField gauge(rig.comm.get(), rig.geom.get());
  Rng rng(5700);
  gauge.randomize(rng);
  for (int sweep = 0; sweep < 10; ++sweep) gauge.heatbath_sweep(5.7, rng);
  std::printf("background: beta 5.7 quenched, plaquette %.4f\n",
              gauge.average_plaquette());

  WilsonDirac dirac(rig.ops.get(), rig.geom.get(), &gauge,
                    WilsonParams{.kappa = 0.14});
  DistField source = dirac.make_field("source");
  DistField prop = dirac.make_field("prop");
  source.zero();
  prop.zero();

  // Point source at the origin, spin 0 color 0, real part.
  const auto [src_rank, src_site] = rig.geom->owner({0, 0, 0, 0});
  source.site(src_rank, src_site)[0] = 1.0;

  CgParams params;
  params.tolerance = 1e-8;
  params.max_iterations = 500;
  const CgResult solve = wilson_eo_solve(dirac, prop, source, params);
  std::printf("propagator: even-odd CG, %d iterations, |r|/|b| = %.1e, "
              "%.1f ms machine time at %.1f%% of peak\n\n",
              solve.iterations, solve.relative_residual,
              rig.m->seconds(solve.cycles) * 1e3,
              100 * perf::cg_efficiency(*rig.m, solve));

  // Timeslice sums: C(t) = sum_x |S(x,t)|^2.
  std::vector<double> corr(static_cast<std::size_t>(t_extent), 0.0);
  for (int r = 0; r < rig.geom->ranks(); ++r) {
    for (int s = 0; s < rig.geom->local().volume(); ++s) {
      const Coord4 g = rig.geom->global_coords(r, s);
      const double* p = prop.site(r, s);
      double norm = 0;
      for (int k = 0; k < 24; ++k) norm += p[k] * p[k];
      corr[static_cast<std::size_t>(g[3])] += norm;
    }
  }

  std::printf("%4s %14s %12s\n", "t", "C(t)", "m_eff(t)");
  for (int t = 0; t < t_extent; ++t) {
    const double c = corr[static_cast<std::size_t>(t)];
    if (t + 1 < t_extent && corr[static_cast<std::size_t>(t + 1)] > 0 &&
        t + 1 <= t_extent / 2) {
      std::printf("%4d %14.6e %12.4f\n", t, c,
                  std::log(c / corr[static_cast<std::size_t>(t + 1)]));
    } else {
      std::printf("%4d %14.6e %12s\n", t, c, "-");
    }
  }

  // Periodicity check: C(t) and C(T-t) agree up to gauge noise.
  double asym = 0;
  for (int t = 1; t < t_extent / 2; ++t) {
    const double a = corr[static_cast<std::size_t>(t)];
    const double b = corr[static_cast<std::size_t>(t_extent - t)];
    asym = std::max(asym, std::abs(a - b) / (a + b));
  }
  std::printf("\ntime-reflection asymmetry: %.1f%% (statistical, one "
              "configuration, one source spin-color)\n",
              100 * asym);
  std::printf("the correlator falls steeply from the source and turns over "
              "at T/2 -- the\ncosh shape a pion propagating around the "
              "periodic lattice must show.\n");
  return 0;
}
