// Fault injection, health sweeps and quarantine (paper Sections 2.3, 3.1, 4).
//
// Bringing up QCDOC meant living with marginal serial links and dead
// daughterboards; the qdaemon is "responsible for ... keeping track of the
// status of the nodes (including hardware problems)", and the Ethernet/JTAG
// controller gives the host "an I/O path to monitor and probe a failing
// node".  This example breaks a running machine on purpose and walks the
// recovery machinery: detect, quarantine, reallocate around the damage.
#include <cstdio>

#include "fault/fault.h"
#include "host/qdaemon.h"
#include "memsys/scrub.h"
#include "perf/report.h"

using namespace qcdoc;

namespace {

host::JobResult sum_job(host::Qdaemon& daemon, machine::Machine& m,
                        const host::PartitionHandle& h) {
  return daemon.run_job(
      h, [&m](comms::Communicator& comm, std::vector<std::string>& out) {
        std::vector<double> one(static_cast<std::size_t>(comm.num_nodes()),
                                1.0);
        const auto sum = comm.global_sum(one);
        char line[96];
        std::snprintf(line, sizeof(line), "sum over %d nodes = %.0f (%.2f us)",
                      comm.num_nodes(), sum.value, m.microseconds(sum.cycles));
        out.push_back(line);
      });
}

void print_job(const char* tag, const host::JobResult& r) {
  std::printf("%s: %s\n", tag, r.ok ? "ok" : "FAILED");
  for (const auto& line : r.output) std::printf("    %s\n", line.c_str());
}

}  // namespace

int main() {
  // A 16-node machine, booted by the qdaemon.
  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 2, 2, 2, 1, 1};
  machine::Machine m(cfg);
  host::Qdaemon daemon(&m);
  daemon.boot();
  std::printf("booted %d nodes, %d free\n\n", daemon.machine_nodes(),
              daemon.free_nodes());

  // A user takes half the machine and runs happily.
  torus::Shape half;
  half.extent = {2, 2, 2, 1, 1, 1};
  auto part = daemon.allocate_partition("user", half, 3);
  print_job("job on healthy partition", sum_job(daemon, m, *part));

  // Disaster: one ASIC inside the partition goes electrically dead.  All
  // twelve of its serial links die with it.
  const NodeId victim = part->partition->nodes()[3];
  fault::FaultInjector injector(&m.mesh());
  fault::FaultPlan plan;
  plan.node_crash(m.engine().now(), victim);
  injector.arm(plan);
  m.engine().run_until(m.engine().now() + 1);
  std::printf("\n*** node %u crashed ***\n\n", victim.value);

  // The periodic health sweep probes every node over Ethernet/JTAG -- a
  // path that decodes in pure hardware, so it works even with no software
  // running on the victim -- and quarantines what it finds.
  const auto sweep = daemon.health().sweep();
  std::printf("health sweep: %d healthy, %d degraded, %d failed\n",
              sweep.healthy, sweep.degraded, sweep.failed);
  for (const auto& note : sweep.notes) std::printf("    %s\n", note.c_str());

  // The partition still exists, but its next job fails cleanly with a
  // diagnostic instead of hanging the whole machine.
  print_job("\njob on damaged partition", sum_job(daemon, m, *part));

  // Recovery: release the damaged partition and allocate a fresh one.  The
  // allocator never places a partition over a quarantined node.
  daemon.release_partition(*part);
  torus::Shape quarter;
  quarter.extent = {2, 2, 1, 1, 1, 1};
  auto fresh = daemon.allocate_partition("user2", quarter, 2);
  bool avoids = true;
  for (const NodeId n : fresh->partition->nodes()) {
    if (n == victim) avoids = false;
  }
  std::printf("\nreallocated %d nodes, avoids node %u: %s\n",
              fresh->partition->num_nodes(), victim.value,
              avoids ? "yes" : "NO");
  print_job("job on fresh partition", sum_job(daemon, m, *fresh));

  std::printf("\nquarantined nodes now:");
  for (const NodeId n : daemon.quarantined_nodes()) {
    std::printf(" %u", n.value);
  }
  std::printf("  (free: %d of %d)\n", daemon.free_nodes(),
              daemon.machine_nodes());

  // Act two: memory soft errors.  Both the 4 MB embedded DRAM and external
  // DDR carry SECDED ECC.  A single flipped bit is corrected by the
  // datapath on every read -- compute never sees it -- and the background
  // scrubber repairs the stored row before a second flip can pair up with
  // it.  Two flips in one codeword are uncorrectable: the data really
  // corrupts and a machine check is latched for the health sweep.
  const NodeId mnode = fresh->partition->nodes()[0];
  auto& mem = m.memory(mnode);
  const memsys::Block buf = mem.alloc_in(memsys::Region::kEdram, 64, "data");
  for (u64 w = 0; w < 64; ++w) mem.write_word(buf.word_addr + w, w * 257);

  memsys::ScrubConfig scrub;
  scrub.rows_per_period = 4096;  // generous budget for the demo
  m.start_memory_scrubbers(scrub);
  fault::FaultPlan upsets;
  upsets.mem_upset(m.engine().now() + 100, mnode, buf.word_addr + 5,
                   /*bits=*/1, /*bit=*/9);   // correctable single
  upsets.mem_upset(m.engine().now() + 200, mnode, buf.word_addr + 40,
                   /*bits=*/2, /*bit=*/3);   // uncorrectable double
  injector.arm(upsets);
  m.engine().run_until(m.engine().now() + (1 << 16));

  std::printf("\n*** memory upsets on node %u ***\n\n", mnode.value);
  std::printf("word hit by the single flip reads back %s\n",
              mem.read_word(buf.word_addr + 5) == 5 * 257 ? "intact"
                                                          : "CORRUPTED");
  const auto msweep = daemon.health().sweep();
  std::printf("health sweep: %d healthy, %d degraded, %d failed\n",
              msweep.healthy, msweep.degraded, msweep.failed);
  for (const auto& note : msweep.notes) std::printf("    %s\n", note.c_str());
  std::printf("%s\n", perf::format_mem_resilience_report(m).c_str());
  return 0;
}
