// Partitioning: carving the six-dimensional machine into independent
// lower-dimensional tori in software (paper Sections 2.2 and 3.1).
//
// "We chose to make the mesh network six dimensional, so we can make
// lower-dimensional partitions of the machine in software, without moving
// cables ... The qdaemon can manage many different partitions of QCDOC ...
// A user requests that the qdaemon remap their partition to a
// dimensionality between one and six."
#include <cstdio>

#include "host/qdaemon.h"
#include "lattice/rig.h"

using namespace qcdoc;

int main() {
  // A 256-node machine: 4x4x2x2x2x1.
  machine::MachineConfig cfg;
  cfg.shape.extent = {4, 4, 2, 2, 2, 1};
  machine::Machine m(cfg);
  host::Qdaemon daemon(&m);
  daemon.boot();
  std::printf("machine %s booted: %d nodes free\n\n",
              m.topology().shape().to_string().c_str(), daemon.free_nodes());

  // Alice takes half the machine as a 4-D torus for her QCD run.
  torus::Shape half;
  half.extent = {2, 4, 2, 2, 2, 1};
  const auto alice = daemon.allocate_partition("alice", half, 4);
  // Bob folds his half down to a 1-D ring (a 64-node "systolic" job).
  const auto bob = daemon.allocate_partition("bob", half, 1);
  std::printf("alice: %d nodes as a %s torus (true torus: %s)\n",
              alice->partition->num_nodes(),
              alice->partition->logical_shape().to_string().c_str(),
              alice->partition->is_true_torus() ? "yes" : "no");
  std::printf("bob:   %d nodes as a %s ring  (true torus: %s)\n",
              bob->partition->num_nodes(),
              bob->partition->logical_shape().to_string().c_str(),
              bob->partition->is_true_torus() ? "yes" : "no");
  std::printf("free nodes now: %d\n\n", daemon.free_nodes());

  // Both run jobs at the same time -- the partitions are disjoint sets of
  // nodes with their own wires, so neither sees the other's traffic.
  const auto job = [&m](comms::Communicator& comm,
                        std::vector<std::string>& out) {
    std::vector<double> contrib(static_cast<std::size_t>(comm.num_nodes()),
                                1.0);
    const auto sum = comm.global_sum(contrib);
    char line[128];
    std::snprintf(line, sizeof(line),
                  "global sum over %d nodes = %.0f in %.2f us",
                  comm.num_nodes(), sum.value,
                  m.microseconds(sum.cycles));
    out.push_back(line);
  };
  const auto ra = daemon.run_job(*alice, job);
  const auto rb = daemon.run_job(*bob, job);
  std::printf("alice job: %s\n", ra.output[0].c_str());
  std::printf("bob job:   %s\n", rb.output[0].c_str());
  std::printf("(bob's 64-ring sum pays for its single long dimension -- the "
              "4-D remap is why\n QCDOC is six-dimensional.)\n\n");

  // Release and re-carve: six ways to shape the same 32 nodes.
  daemon.release_partition(*alice);
  daemon.release_partition(*bob);
  torus::Shape box;
  box.extent = {2, 2, 2, 2, 2, 1};
  std::printf("one 32-node box remapped to every dimensionality:\n");
  for (int dims = 1; dims <= 5; ++dims) {
    const auto p = daemon.allocate_partition("shape", box, dims);
    std::printf("  %d-D: %s\n", dims,
                p->partition->logical_shape().to_string().c_str());
    daemon.release_partition(*p);
  }
  return 0;
}
