// Hard scaling: the paper's central architectural argument, as a runnable
// demonstration.
//
// "Low latency is vital if a problem of a fixed size is to be run on a
// machine with tens of thousands of nodes" (paper Section 1).  One 16^4
// lattice is solved on bigger and bigger machines; as the local volume per
// node shrinks, the communication-to-compute ratio grows, and only a
// low-latency mesh keeps delivering speedup.  A commodity-cluster network
// model (5-10 us message startup) shows where clusters flatten out.
#include <cstdio>
#include <vector>

#include "lattice/cg.h"
#include "lattice/rig.h"
#include "lattice/wilson.h"
#include "net/cluster_net.h"
#include "perf/report.h"

using namespace qcdoc;
using namespace qcdoc::lattice;

int main() {
  const Coord4 global{8, 8, 8, 8};
  std::printf("hard scaling one %dx%dx%dx%d lattice (4^4 down to 2^4 per node):\n\n", global[0],
              global[1], global[2], global[3]);
  std::printf("%8s %10s %14s %10s %10s %16s\n", "nodes", "local", "qcdoc ms/it",
              "speedup", "comm %", "cluster ms/it");

  double base_qcdoc = 0;
  for (const auto shape :
       std::vector<std::array<int, 6>>{{2, 2, 2, 2, 1, 1},
                                       {4, 2, 2, 2, 1, 1},
                                       {4, 4, 2, 2, 1, 1},
                                       {4, 4, 4, 2, 1, 1},
                                       {4, 4, 4, 4, 1, 1}}) {
    // local volumes run from the paper's 4^4 benchmark point down to 2^4,
    // the deep hard-scaling regime where only a low-latency mesh survives.
    SolverRig rig(shape, global);
    GaugeField gauge(rig.comm.get(), rig.geom.get());
    Rng rng(11);
    gauge.randomize_near_unit(rng, 0.1);
    WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge, WilsonParams{});
    DistField x = op.make_field("x");
    DistField b = op.make_field("b");
    x.zero();
    rig.fill_source(b);
    CgParams params;
    params.fixed_iterations = 3;
    const CgResult r = cg_solve(op, x, b, params);

    const double ms =
        rig.m->seconds(r.cycles) * 1e3 / params.fixed_iterations;
    if (base_qcdoc == 0) base_qcdoc = ms;

    // The same nodes on a commodity network.
    net::ClusterNetConfig ccfg;
    ccfg.cpu_clock_hz = rig.m->hw().cpu_clock_hz;
    net::ClusterNet cluster(ccfg);
    int dims = 0;
    double face_bytes = 0;
    for (int mu = 0; mu < kNd; ++mu) {
      if (rig.geom->nodes_in_dim(mu) > 1) {
        ++dims;
        face_bytes += rig.geom->local().face_volume(mu) * 96.0;
      }
    }
    const Cycle comm =
        2 * cluster.halo_exchange_cycles(
                2 * dims, static_cast<std::size_t>(
                              dims > 0 ? face_bytes / dims : 0)) +
        2 * cluster.allreduce_cycles(rig.m->num_nodes(), 1);
    const double cluster_ms =
        (r.compute_cycles / params.fixed_iterations +
         static_cast<double>(comm)) /
        ccfg.cpu_clock_hz * 1e3;

    const auto& le = rig.geom->local().extent();
    char local[32];
    std::snprintf(local, sizeof(local), "%dx%dx%dx%d", le[0], le[1], le[2],
                  le[3]);
    std::printf("%8d %10s %14.3f %9.1fx %10.1f %16.3f\n",
                rig.m->num_nodes(), local, ms, base_qcdoc / ms,
                100 * (r.comm_cycles + r.global_cycles) /
                    static_cast<double>(r.cycles),
                cluster_ms);
  }
  std::printf(
      "\nthe mesh keeps winning as nodes grow because its 600 ns "
      "memory-to-memory latency\nand hardware global sums keep small "
      "transfers cheap -- the reason QCDOC exists.\n");
  return 0;
}
