// A day in the machine room: assemble the hardware, boot it, break it, and
// find the fault with the paper's diagnostics (Sections 2.3, 2.4, 4).
#include <cstdio>

#include "host/config_store.h"
#include "host/diagnostics.h"
#include "host/qdaemon.h"
#include "lattice/rig.h"
#include "lattice/gauge.h"
#include "lattice/wilson.h"
#include "machine/cost.h"

using namespace qcdoc;

int main() {
  // --- Assembly: the paper's 1024-node rack, 8x4x4x2x2x2 ----------------
  machine::MachineConfig cfg;
  cfg.shape.extent = {4, 4, 2, 2, 2, 2};  // 256 nodes (a quarter rack, faster)
  machine::Machine m(cfg);
  const auto plan = m.packaging();
  std::printf("assembled: %s\n", plan.to_string().c_str());
  const machine::CostModel cost;
  std::printf("bill of materials: $%.0f (+$%.0f prorated R&D)\n\n",
              cost.parts_cost(plan),
              cost.total_cost(plan) - cost.parts_cost(plan));

  // --- Boot over Ethernet/JTAG ------------------------------------------
  host::Qdaemon daemon(&m);
  const auto& boot = daemon.boot();
  std::printf("boot: %d/%d nodes ready in %.1f ms simulated; "
              "partition interrupts %s\n",
              boot.nodes_ready, m.num_nodes(),
              m.seconds(boot.total_cycles) * 1e3,
              boot.partition_interrupt_ok ? "ok" : "FAILED");

  // --- Sabotage: one marginal serial link --------------------------------
  const NodeId victim{137};
  const auto bad_link = torus::link_index(2, torus::Dir::kPlus);
  m.mesh().wire(victim, bad_link).set_bit_error_rate(2e-4);
  std::printf("\n(a cable at node %u, link %d develops a marginal contact)\n",
              victim.value, bad_link.value);

  // --- Run physics anyway -----------------------------------------------
  torus::Shape box;
  box.extent = cfg.shape.extent;
  const auto part = daemon.allocate_partition("physics", box, 4);
  double norm = 0;
  daemon.run_job(*part, [&](comms::Communicator& comm,
                            std::vector<std::string>&) {
    lattice::SolverRig rig(&m, &comm.partition(), {16, 16, 8, 8});
    lattice::GaugeField gauge(rig.comm.get(), rig.geom.get());
    gauge.set_unit();
    lattice::WilsonDirac op(rig.ops.get(), rig.geom.get(), &gauge,
                            lattice::WilsonParams{});
    lattice::DistField in = op.make_field("in");
    lattice::DistField out = op.make_field("out");
    rig.fill_source(in);
    for (int i = 0; i < 3; ++i) op.dslash(out, in);
    norm = rig.ops->norm2(out);
  });
  std::printf("physics ran: |D psi|^2 = %.6e\n", norm);

  // --- Diagnostics find the fault ----------------------------------------
  host::Diagnostics diag(&m, &daemon.ethernet());
  const auto scan = diag.scan_link_errors();
  std::printf("\ndiagnostics: %llu detected errors, %llu undetected, "
              "%llu resends\n",
              static_cast<unsigned long long>(scan.detected_errors),
              static_cast<unsigned long long>(scan.undetected_errors),
              static_cast<unsigned long long>(scan.resends));
  std::printf("suspect nodes:");
  for (const auto n : scan.suspect_nodes) std::printf(" %u", n.value);
  std::printf("\n");

  const auto checks = diag.verify_checksums();
  std::printf("end-of-run checksums: %s (%d links checked)\n",
              checks.all_match ? "all match -- every detected error was "
                                 "repaired by the automatic resend"
                               : "MISMATCH -- data corruption slipped past "
                                 "parity; rerun required",
              checks.links_checked);

  // --- RISCWatch-style probe over Ethernet/JTAG --------------------------
  const auto probe = m.memory(victim).alloc(1, "probe");
  diag.jtag_poke(victim, probe.word_addr, 0xdeadbeef);
  std::printf("\nJTAG probe of node %u: wrote and read back 0x%llx "
              "(no software running on the node)\n",
              victim.value,
              static_cast<unsigned long long>(
                  diag.jtag_peek(victim, probe.word_addr)));

  // --- Checkpoint a configuration to the host disk (NFS path) -----------
  {
    lattice::SolverRig rig(&m, part->partition, {8, 8, 4, 8});
    lattice::GaugeField gauge(rig.comm.get(), rig.geom.get());
    Rng rng(4096);
    gauge.randomize_near_unit(rng, 0.2);
    host::ConfigStore store(&m, &daemon.ethernet());
    const auto io = store.save(gauge, "lat.conf.0042");
    std::printf("\nwrote lat.conf.0042 to the host disk: %.1f MB in %.1f ms "
                "over the nodes' Ethernet (%.0f MB/s aggregate)\n",
                io.bytes / 1e6, io.seconds * 1e3, io.mb_per_s);
    lattice::GaugeField back(rig.comm.get(), rig.geom.get());
    back.set_unit();
    const auto load = store.load(&back, "lat.conf.0042");
    std::printf("reloaded and header-verified: %s (plaquette %.6f)\n",
                load.ok ? "ok" : "FAILED", back.average_plaquette());
  }
  return 0;
}
