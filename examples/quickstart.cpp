// Quickstart: build a 16-node QCDOC, boot it, and solve the Wilson-Dirac
// equation with conjugate gradient on the simulated machine.
//
//   $ ./quickstart
//
// Everything below runs through the full stack: the qdaemon boots the
// nodes over Ethernet/JTAG, the gauge field lives in each node's EDRAM,
// halo exchanges travel as real 72-bit packets over the bit-serial mesh,
// and the inner products go through the SCU global-sum hardware.
#include <cstdio>

#include "host/qdaemon.h"
#include "lattice/cg.h"
#include "lattice/rig.h"
#include "lattice/wilson.h"
#include "perf/report.h"

using namespace qcdoc;

int main() {
  // A 16-node machine: a 2x2x2x2 slice of the 6-D torus.
  machine::MachineConfig cfg;
  cfg.shape.extent = {2, 2, 2, 2, 1, 1};
  machine::Machine m(cfg);
  std::printf("machine: %d nodes, %s, %.0f MHz\n", m.num_nodes(),
              m.topology().shape().to_string().c_str(),
              m.hw().cpu_clock_hz / 1e6);
  // Simulation engine (QCDOC_SIM_THREADS selects serial vs parallel; the
  // simulated results are bit-identical either way).
  std::printf("%s\n", perf::format_engine_report(m.engine().report()).c_str());

  // Boot through the qdaemon: ~100 JTAG + ~100 UDP packets per node.
  host::Qdaemon daemon(&m);
  const auto& boot = daemon.boot();
  std::printf("booted %d nodes in %.1f ms (%llu JTAG + %llu UDP packets)\n",
              boot.nodes_ready, m.seconds(boot.total_cycles) * 1e3,
              static_cast<unsigned long long>(boot.jtag_packets),
              static_cast<unsigned long long>(boot.udp_packets));

  // An 8^4 global lattice -> 4^4 per node, the paper's benchmark point.
  // Allocate the whole machine as one 4-D partition through the qdaemon.
  torus::Shape box;
  box.extent = cfg.shape.extent;
  const auto handle = daemon.allocate_partition("qcd", box, 4);
  lattice::SolverRig whole(&m, handle->partition, {8, 8, 8, 8});
  auto& r = whole;

  lattice::GaugeField gauge(r.comm.get(), r.geom.get());
  Rng rng(2004);
  gauge.randomize_near_unit(rng, 0.15);
  std::printf("gauge configuration: plaquette %.4f\n",
              gauge.average_plaquette());

  lattice::WilsonDirac dirac(r.ops.get(), r.geom.get(), &gauge,
                             lattice::WilsonParams{.kappa = 0.124});
  lattice::DistField x = dirac.make_field("x");
  lattice::DistField b = dirac.make_field("b");
  x.zero();
  r.fill_source(b);

  lattice::CgParams params;
  params.tolerance = 1e-8;
  params.max_iterations = 500;
  const auto result = lattice::cg_solve(dirac, x, b, params);

  std::printf(
      "\nCG solved M^+M x = M^+ b in %d iterations (|r|/|b| = %.2e)\n",
      result.iterations, result.relative_residual);
  std::printf("machine time: %.2f ms simulated\n",
              m.seconds(result.cycles) * 1e3);
  std::printf("sustained: %.0f Mflops machine-wide = %.1f%% of peak\n",
              perf::cg_sustained_mflops(m, result),
              100 * perf::cg_efficiency(m, result));
  std::printf("  compute %.0f%%  communication %.0f%%  global sums %.0f%%\n",
              100 * result.compute_cycles / static_cast<double>(result.cycles),
              100 * result.comm_cycles / static_cast<double>(result.cycles),
              100 * result.global_cycles / static_cast<double>(result.cycles));

  // The paper's end-of-run confirmation.
  std::printf("link checksums: %s\n",
              m.mesh().verify_link_checksums() ? "all match" : "MISMATCH");
  std::printf("%s\n", perf::format_engine_report(m.engine().report()).c_str());
  std::printf("event-order digest: %016llx\n",
              static_cast<unsigned long long>(m.engine().trace_digest()));
  return 0;
}
